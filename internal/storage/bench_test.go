package storage

import (
	"fmt"
	"os"
	"testing"
)

// Experiment E7 (DESIGN.md): storage engine throughput and recovery cost.

func benchPut(b *testing.B, pol SyncPolicy, valSize int) {
	db, err := Open(b.TempDir(), Options{Sync: pol})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, valSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%09d", i))
		if err := db.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPut_SyncNever_128B(b *testing.B)  { benchPut(b, SyncNever, 128) }
func BenchmarkPut_SyncBatch_128B(b *testing.B)  { benchPut(b, SyncBatch, 128) }
func BenchmarkPut_SyncAlways_128B(b *testing.B) { benchPut(b, SyncAlways, 128) }
func BenchmarkPut_SyncNever_4KiB(b *testing.B)  { benchPut(b, SyncNever, 4096) }

func BenchmarkGet(b *testing.B) {
	db, err := Open(b.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 10000
	val := make([]byte, 256)
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%09d", i%n))
		if _, ok, err := db.Get(key); !ok || err != nil {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkBatchApply_100Ops(b *testing.B) {
	db, err := Open(b.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := NewBatch()
		for j := 0; j < 100; j++ {
			batch.Put([]byte(fmt.Sprintf("key-%d-%d", i, j)), val)
		}
		if err := db.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRecovery measures Open time over a store of n records, with and
// without hint files (the hint ablation from DESIGN.md E7).
func benchRecovery(b *testing.B, n int, hints bool) {
	dir := b.TempDir()
	db, err := Open(dir, Options{Sync: SyncNever, MaxSegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 256)
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
	db.Close()
	if !hints {
		removeAllHints(b, dir)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Open(dir, Options{Sync: SyncNever, MaxSegmentBytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if st := db.Stats(); st.Keys != n {
			b.Fatalf("recovered %d keys, want %d", st.Keys, n)
		}
		db.Close()
		if !hints {
			removeAllHints(b, dir)
		}
		b.StartTimer()
	}
}

func removeAllHints(b *testing.B, dir string) {
	b.Helper()
	ids, err := listSegments(dir)
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range ids {
		os.Remove(hintPath(dir, id))
	}
}

func BenchmarkRecovery_10kRecords_Scan(b *testing.B)  { benchRecovery(b, 10_000, false) }
func BenchmarkRecovery_10kRecords_Hints(b *testing.B) { benchRecovery(b, 10_000, true) }
func BenchmarkRecovery_50kRecords_Scan(b *testing.B)  { benchRecovery(b, 50_000, false) }
func BenchmarkRecovery_50kRecords_Hints(b *testing.B) { benchRecovery(b, 50_000, true) }

func BenchmarkCompact_20kLive(b *testing.B) {
	val := make([]byte, 128)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := Open(b.TempDir(), Options{Sync: SyncNever, MaxSegmentBytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 20_000; j++ {
			db.Put([]byte(fmt.Sprintf("key-%09d", j%5000)), val) // 75% dead
		}
		b.StartTimer()
		if err := db.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db.Close()
		b.StartTimer()
	}
}

func BenchmarkScan_10kKeys(b *testing.B) {
	db, err := Open(b.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 64)
	for i := 0; i < 10_000; i++ {
		db.Put([]byte(fmt.Sprintf("t/table/%06d", i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		db.Scan("t/table/", func(string, []byte) bool { n++; return true })
		if n != 10_000 {
			b.Fatal(n)
		}
	}
}
