package quality

import (
	"fmt"
	"sort"
	"sync"
)

// OnlineDawidSkene is an incremental Dawid–Skene estimator: it accepts
// verdicts one at a time as a collector streams them in, refines the
// model with warm-started EM sweeps every SweepEvery votes, and on
// Finalize runs the EM to convergence from the warm state. Because the
// E step recomputes every posterior from the class priors and confusion
// matrices (not from the previous posterior), the incremental fit
// reaches the same fixed point as the batch pass over the same votes —
// the property the incremental-vs-batch tests pin down — while keeping
// per-vote work O(sweep/SweepEvery) instead of O(full EM at drain).
//
// Unlike the batch DawidSkene, the label, worker, and item universes
// grow as votes arrive; posterior vectors are extended lazily and the
// priors/confusion state is rebuilt at current size on every sweep.
// All methods are safe for concurrent use: a distributed collector's
// per-partition goroutines can Observe into one shared instance.
type OnlineDawidSkene struct {
	base       DawidSkene
	sweepEvery int

	mu        sync.Mutex
	votes     map[string][]Vote
	items     []string // arrival order, for deterministic accumulation
	labels    []string // arrival order; sorted views built on demand
	labelIdx  map[string]int
	workers   []string
	workerIdx map[string]int
	post      map[string][]float64 // item → P(truth = labels[k])
	priors    []float64            // last M-step class priors
	conf      [][][]float64        // last M-step confusion, worker × truth × answer
	total     int
	pending   int
	sweeps    int
}

// NewOnlineDawidSkene builds an online estimator with base's EM
// hyperparameters (MaxIter/Tol/Smoothing, zero values defaulted as in
// the batch pass). sweepEvery is how many new votes accumulate between
// incremental refinement sweeps; zero or negative means 64.
func NewOnlineDawidSkene(base DawidSkene, sweepEvery int) *OnlineDawidSkene {
	if sweepEvery <= 0 {
		sweepEvery = 64
	}
	return &OnlineDawidSkene{
		base:       base,
		sweepEvery: sweepEvery,
		votes:      map[string][]Vote{},
		labelIdx:   map[string]int{},
		workerIdx:  map[string]int{},
		post:       map[string][]float64{},
	}
}

// Observe feeds one verdict for item into the model. Arrival order does
// not matter for the final fit: votes only enter the EM through
// per-item multisets, so out-of-order and interleaved streams converge
// to the same model as a sorted batch.
func (o *OnlineDawidSkene) Observe(item string, v Vote) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.labelIdx[v.Value]; !ok {
		o.labelIdx[v.Value] = len(o.labels)
		o.labels = append(o.labels, v.Value)
		for it, p := range o.post {
			o.post[it] = append(p, 0)
		}
	}
	if _, ok := o.workerIdx[v.Worker]; !ok {
		o.workerIdx[v.Worker] = len(o.workers)
		o.workers = append(o.workers, v.Worker)
	}
	if _, ok := o.post[item]; !ok {
		o.items = append(o.items, item)
	}
	o.votes[item] = append(o.votes[item], v)
	// Re-seed this item's posterior from its vote proportions — the
	// batch pass's initialization — so un-swept items match batch init
	// and swept items get the new vote folded in before the next sweep.
	p := make([]float64, len(o.labels))
	for _, vv := range o.votes[item] {
		p[o.labelIdx[vv.Value]]++
	}
	normalize(p)
	o.post[item] = p

	o.total++
	o.pending++
	if o.pending >= o.sweepEvery {
		o.sweep(2)
		o.pending = 0
	}
}

// sweep runs up to n EM iterations over the current state. Caller holds
// o.mu.
func (o *OnlineDawidSkene) sweep(n int) {
	L := len(o.labels)
	if L == 0 || len(o.items) == 0 {
		return
	}
	tol := o.base.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	smooth := o.base.Smoothing
	if smooth <= 0 {
		smooth = 0.01
	}
	for iter := 0; iter < n; iter++ {
		// M step: class priors from current posteriors.
		priors := make([]float64, L)
		for _, item := range o.items {
			for k, p := range o.post[item] {
				priors[k] += p
			}
		}
		normalize(priors)

		// M step: confusion matrices, rebuilt at current universe size.
		conf := make([][][]float64, len(o.workers))
		for w := range conf {
			conf[w] = make([][]float64, L)
			for k := range conf[w] {
				conf[w][k] = make([]float64, L)
				for l := range conf[w][k] {
					conf[w][k][l] = smooth
				}
			}
		}
		for _, item := range o.items {
			for _, v := range o.votes[item] {
				w := o.workerIdx[v.Worker]
				l := o.labelIdx[v.Value]
				for k := 0; k < L; k++ {
					conf[w][k][l] += o.post[item][k]
				}
			}
		}
		for w := range conf {
			for k := 0; k < L; k++ {
				normalize(conf[w][k])
			}
		}

		// E step: recompute every posterior from priors and confusion.
		maxDelta := 0.0
		for _, item := range o.items {
			next := make([]float64, L)
			for k := 0; k < L; k++ {
				p := priors[k]
				for _, v := range o.votes[item] {
					p *= conf[o.workerIdx[v.Worker]][k][o.labelIdx[v.Value]]
				}
				next[k] = p
			}
			normalize(next)
			for k := 0; k < L; k++ {
				if delta := abs(next[k] - o.post[item][k]); delta > maxDelta {
					maxDelta = delta
				}
			}
			o.post[item] = next
		}
		o.priors, o.conf = priors, conf
		o.sweeps++
		if maxDelta < tol {
			break
		}
	}
}

// Snapshot returns the current interim decisions without forcing a
// sweep: EM-refined posteriors for items the last sweep covered,
// vote-proportion posteriors for newer ones. Cheap enough to call
// mid-stream for progress reporting.
func (o *OnlineDawidSkene) Snapshot() map[string]Decision {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.decisions()
}

// Finalize runs the EM to convergence from the warm incremental state
// and returns the full fitted model in the same shape as
// DawidSkene.Fit. The estimator remains usable afterwards; further
// Observe calls keep refining.
func (o *OnlineDawidSkene) Finalize() DSFit {
	o.mu.Lock()
	defer o.mu.Unlock()
	maxIter := o.base.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	o.sweep(maxIter)
	o.pending = 0
	if len(o.labels) == 0 || len(o.items) == 0 {
		return DSFit{Decisions: map[string]Decision{}}
	}

	L := len(o.labels)
	sorted := append([]string(nil), o.labels...)
	sort.Strings(sorted)
	priorOut := make(map[string]float64, L)
	for _, l := range sorted {
		priorOut[l] = o.priors[o.labelIdx[l]]
	}
	confOut := make(map[string]map[string]map[string]float64, len(o.workers))
	for w, name := range o.workers {
		m := make(map[string]map[string]float64, L)
		for _, truth := range sorted {
			row := make(map[string]float64, L)
			for _, ans := range sorted {
				row[ans] = o.conf[w][o.labelIdx[truth]][o.labelIdx[ans]]
			}
			m[truth] = row
		}
		confOut[name] = m
	}
	return DSFit{Decisions: o.decisions(), Labels: sorted, Priors: priorOut, Confusion: confOut}
}

// decisions extracts per-item decisions from the current posteriors
// with the batch pass's tie-break: iterate labels in sorted order and
// keep strictly greater posteriors, so ties pick the lexicographically
// smallest label. Caller holds o.mu.
func (o *OnlineDawidSkene) decisions() map[string]Decision {
	sorted := append([]string(nil), o.labels...)
	sort.Strings(sorted)
	out := make(map[string]Decision, len(o.items))
	for _, item := range o.items {
		p := o.post[item]
		best, bestP := "", -1.0
		for _, l := range sorted {
			if pk := p[o.labelIdx[l]]; pk > bestP {
				best, bestP = l, pk
			}
		}
		support := 0
		for _, v := range o.votes[item] {
			if v.Value == best {
				support++
			}
		}
		out[item] = Decision{Value: best, Confidence: bestP, Support: support, Total: len(o.votes[item])}
	}
	return out
}

// VotesSeen reports how many verdicts have been observed.
func (o *OnlineDawidSkene) VotesSeen() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.total
}

// Sweeps reports how many EM iterations have run (incremental plus
// finalization), for experiment accounting.
func (o *OnlineDawidSkene) Sweeps() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sweeps
}

// String renders the configuration, for experiment logs.
func (o *OnlineDawidSkene) String() string {
	return fmt.Sprintf("OnlineDawidSkene(%s every=%d)", o.base, o.sweepEvery)
}
