package quality

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// genStream builds a seeded synthetic verdict stream: items with hidden
// truth over the given labels, answered by workers of varying accuracy.
// It returns the stream in generation order plus the per-item vote map
// the batch pass consumes.
func genStream(seed int64, items int, labels []string) (stream []struct {
	Item string
	V    Vote
}, votes map[string][]Vote) {
	rng := rand.New(rand.NewSource(seed))
	accs := []float64{0.95, 0.9, 0.85, 0.62, 0.55}
	votes = map[string][]Vote{}
	for i := 0; i < items; i++ {
		item := fmt.Sprintf("item-%03d", i)
		truth := labels[rng.Intn(len(labels))]
		for w, acc := range accs {
			worker := fmt.Sprintf("w-%d", w)
			ans := truth
			if rng.Float64() > acc {
				for {
					ans = labels[rng.Intn(len(labels))]
					if ans != truth {
						break
					}
				}
			}
			v := Vote{Worker: worker, Value: ans}
			stream = append(stream, struct {
				Item string
				V    Vote
			}{item, v})
			votes[item] = append(votes[item], v)
		}
	}
	return stream, votes
}

// assertSameFit requires the online fit to match the batch fit: labels
// identical, every decision's value identical, and priors plus every
// confusion cell within tol.
func assertSameFit(t *testing.T, online, batch DSFit, tol float64) {
	t.Helper()
	if len(online.Labels) != len(batch.Labels) {
		t.Fatalf("label universes differ: online %v batch %v", online.Labels, batch.Labels)
	}
	for i, l := range batch.Labels {
		if online.Labels[i] != l {
			t.Fatalf("label universes differ: online %v batch %v", online.Labels, batch.Labels)
		}
	}
	if len(online.Decisions) != len(batch.Decisions) {
		t.Fatalf("decision counts differ: online %d batch %d", len(online.Decisions), len(batch.Decisions))
	}
	for item, bd := range batch.Decisions {
		od, ok := online.Decisions[item]
		if !ok {
			t.Fatalf("online fit missing item %s", item)
		}
		if od.Value != bd.Value {
			t.Fatalf("item %s label differs: online %q (%.4f) batch %q (%.4f)",
				item, od.Value, od.Confidence, bd.Value, bd.Confidence)
		}
		if math.Abs(od.Confidence-bd.Confidence) > tol {
			t.Fatalf("item %s confidence differs: online %.6f batch %.6f", item, od.Confidence, bd.Confidence)
		}
	}
	for l, bp := range batch.Priors {
		if math.Abs(online.Priors[l]-bp) > tol {
			t.Fatalf("prior for %s differs: online %.6f batch %.6f", l, online.Priors[l], bp)
		}
	}
	if len(online.Confusion) != len(batch.Confusion) {
		t.Fatalf("worker counts differ: online %d batch %d", len(online.Confusion), len(batch.Confusion))
	}
	for w, bm := range batch.Confusion {
		om, ok := online.Confusion[w]
		if !ok {
			t.Fatalf("online fit missing worker %s", w)
		}
		for truth, brow := range bm {
			for ans, bp := range brow {
				if math.Abs(om[truth][ans]-bp) > tol {
					t.Fatalf("confusion[%s][%s][%s] differs: online %.6f batch %.6f",
						w, truth, ans, om[truth][ans], bp)
				}
			}
		}
	}
}

func TestOnlineDawidSkeneMatchesBatch(t *testing.T) {
	for _, tc := range []struct {
		name   string
		labels []string
		every  int
	}{
		{"binary", []string{"Yes", "No"}, 64},
		{"binary-frequent-sweeps", []string{"Yes", "No"}, 7},
		{"ternary", []string{"a", "b", "c"}, 32},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stream, votes := genStream(20160903, 60, tc.labels)
			ds := DawidSkene{}
			online := NewOnlineDawidSkene(ds, tc.every)
			for _, sv := range stream {
				online.Observe(sv.Item, sv.V)
			}
			if got := online.VotesSeen(); got != len(stream) {
				t.Fatalf("VotesSeen = %d, want %d", got, len(stream))
			}
			assertSameFit(t, online.Finalize(), ds.Fit(votes), 1e-3)
		})
	}
}

func TestOnlineDawidSkeneOutOfOrderArrival(t *testing.T) {
	stream, votes := genStream(7, 50, []string{"Yes", "No"})
	batch := DawidSkene{}.Fit(votes)
	for _, shuffleSeed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(shuffleSeed))
		shuffled := append(stream[:0:0], stream...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		online := NewOnlineDawidSkene(DawidSkene{}, 16)
		for _, sv := range shuffled {
			online.Observe(sv.Item, sv.V)
		}
		assertSameFit(t, online.Finalize(), batch, 1e-3)
	}
}

func TestOnlineDawidSkeneSnapshotMidStream(t *testing.T) {
	stream, _ := genStream(42, 30, []string{"Yes", "No"})
	online := NewOnlineDawidSkene(DawidSkene{}, 10)
	seen := map[string]bool{}
	for i, sv := range stream {
		online.Observe(sv.Item, sv.V)
		seen[sv.Item] = true
		if i%37 == 0 {
			snap := online.Snapshot()
			if len(snap) != len(seen) {
				t.Fatalf("snapshot after %d votes has %d items, want %d", i+1, len(snap), len(seen))
			}
			for item := range seen {
				if _, ok := snap[item]; !ok {
					t.Fatalf("snapshot missing observed item %s", item)
				}
			}
		}
	}
	// Finalize must produce at least as confident a model as the last
	// snapshot — and remain usable for further observations.
	fit := online.Finalize()
	if len(fit.Decisions) != len(seen) {
		t.Fatalf("finalize has %d decisions, want %d", len(fit.Decisions), len(seen))
	}
	online.Observe("late-item", Vote{Worker: "w-0", Value: "Yes"})
	if got := online.Finalize(); len(got.Decisions) != len(seen)+1 {
		t.Fatalf("post-finalize observe lost: %d decisions, want %d", len(got.Decisions), len(seen)+1)
	}
}

func TestOnlineDawidSkeneEmpty(t *testing.T) {
	online := NewOnlineDawidSkene(DawidSkene{}, 0)
	if snap := online.Snapshot(); len(snap) != 0 {
		t.Fatalf("empty snapshot = %v", snap)
	}
	if fit := online.Finalize(); len(fit.Decisions) != 0 {
		t.Fatalf("empty finalize = %+v", fit)
	}
}

func TestBatchFitExposesConfusion(t *testing.T) {
	_, votes := genStream(11, 40, []string{"Yes", "No"})
	fit := DawidSkene{}.Fit(votes)
	if len(fit.Confusion) != 5 {
		t.Fatalf("confusion for %d workers, want 5", len(fit.Confusion))
	}
	for w, m := range fit.Confusion {
		for truth, row := range m {
			var sum float64
			for _, p := range row {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("confusion[%s][%s] rows sum to %.9f, want 1", w, truth, sum)
			}
		}
	}
	// The accurate worker's diagonal should dominate the spammer's.
	diag := func(w string) float64 {
		var d float64
		for truth, row := range fit.Confusion[w] {
			d += row[truth]
		}
		return d
	}
	if diag("w-0") <= diag("w-4") {
		t.Fatalf("w-0 (acc 0.95) diagonal %.3f not above w-4 (acc 0.55) %.3f", diag("w-0"), diag("w-4"))
	}
}
