// Package quality implements the quality-control component of Reprowd's
// architecture (Figure 1 of the paper): algorithms that turn the redundant,
// noisy answers in a CrowdData result column into one decision per row.
//
// The paper's worked example uses majority vote; the component is described
// as implementing "a number of widely used techniques", so this package also
// provides weighted voting, Dawid–Skene expectation maximization, a
// simplified GLAD, and gold-seeded worker filtering. Experiment E6 compares
// them.
package quality

import (
	"sort"
)

// Vote is one worker's answer for one item.
type Vote struct {
	// Worker identifies who answered.
	Worker string
	// Value is the answer.
	Value string
}

// Decision is an aggregator's output for one item.
type Decision struct {
	// Value is the chosen answer.
	Value string
	// Confidence is the aggregator's probability (or normalized score)
	// for Value, in [0, 1].
	Confidence float64
	// Support is the number of raw votes that agree with Value.
	Support int
	// Total is the number of raw votes for the item.
	Total int
}

// Aggregator turns per-item vote lists into per-item decisions.
type Aggregator interface {
	// Name identifies the algorithm in lineage and experiment reports.
	Name() string
	// Aggregate maps item key → votes to item key → decision. Items with
	// no votes are omitted from the result.
	Aggregate(votes map[string][]Vote) map[string]Decision
}

// MajorityVote picks the most frequent answer per item. Ties break
// lexicographically (smallest answer wins) so results are deterministic —
// the property the paper's rerun guarantee depends on.
type MajorityVote struct{}

// Name implements Aggregator.
func (MajorityVote) Name() string { return "mv" }

// Aggregate implements Aggregator.
func (MajorityVote) Aggregate(votes map[string][]Vote) map[string]Decision {
	out := make(map[string]Decision, len(votes))
	for item, vs := range votes {
		if len(vs) == 0 {
			continue
		}
		counts := map[string]int{}
		for _, v := range vs {
			counts[v.Value]++
		}
		out[item] = pickMax(counts, len(vs))
	}
	return out
}

// pickMax chooses the highest-count answer with lexicographic tie-break.
func pickMax(counts map[string]int, total int) Decision {
	answers := make([]string, 0, len(counts))
	for a := range counts {
		answers = append(answers, a)
	}
	sort.Strings(answers)
	best, bestN := "", -1
	for _, a := range answers {
		if counts[a] > bestN {
			best, bestN = a, counts[a]
		}
	}
	return Decision{
		Value:      best,
		Confidence: float64(bestN) / float64(total),
		Support:    bestN,
		Total:      total,
	}
}

// WeightedVote is majority vote with per-worker weights, typically
// estimated accuracies. Workers missing from Weights get DefaultWeight.
type WeightedVote struct {
	// Weights maps worker id → weight (≥ 0).
	Weights map[string]float64
	// DefaultWeight applies to unknown workers; zero means they are
	// ignored entirely.
	DefaultWeight float64
}

// Name implements Aggregator.
func (WeightedVote) Name() string { return "wmv" }

// Aggregate implements Aggregator.
func (w WeightedVote) Aggregate(votes map[string][]Vote) map[string]Decision {
	out := make(map[string]Decision, len(votes))
	for item, vs := range votes {
		if len(vs) == 0 {
			continue
		}
		scores := map[string]float64{}
		counts := map[string]int{}
		var totalW float64
		for _, v := range vs {
			wt, ok := w.Weights[v.Worker]
			if !ok {
				wt = w.DefaultWeight
			}
			scores[v.Value] += wt
			counts[v.Value]++
			totalW += wt
		}
		answers := make([]string, 0, len(scores))
		for a := range scores {
			answers = append(answers, a)
		}
		sort.Strings(answers)
		best, bestS := "", -1.0
		for _, a := range answers {
			if scores[a] > bestS {
				best, bestS = a, scores[a]
			}
		}
		conf := 0.0
		if totalW > 0 {
			conf = bestS / totalW
		}
		out[item] = Decision{Value: best, Confidence: conf, Support: counts[best], Total: len(vs)}
	}
	return out
}

// labelSet collects the distinct answer values across all votes, sorted.
func labelSet(votes map[string][]Vote) []string {
	set := map[string]bool{}
	for _, vs := range votes {
		for _, v := range vs {
			set[v.Value] = true
		}
	}
	labels := make([]string, 0, len(set))
	for l := range set {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// workerSet collects the distinct workers, sorted.
func workerSet(votes map[string][]Vote) []string {
	set := map[string]bool{}
	for _, vs := range votes {
		for _, v := range vs {
			set[v.Worker] = true
		}
	}
	ws := make([]string, 0, len(set))
	for w := range set {
		ws = append(ws, w)
	}
	sort.Strings(ws)
	return ws
}

// itemKeys returns the item keys sorted, for deterministic iteration.
func itemKeys(votes map[string][]Vote) []string {
	keys := make([]string, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
