package quality

import "fmt"

// DawidSkene estimates per-worker confusion matrices and true labels
// jointly by expectation maximization (Dawid & Skene, 1979). It handles an
// arbitrary categorical label set and degrades gracefully to majority vote
// when every worker is equally reliable.
type DawidSkene struct {
	// MaxIter caps EM iterations. Zero means 50.
	MaxIter int
	// Tol stops iteration when no posterior changes by more than this.
	// Zero means 1e-6.
	Tol float64
	// Smoothing is the Laplace pseudo-count used in the M step; it keeps
	// confusion rows away from hard 0/1 and stabilizes small crowds.
	// Zero means 0.01.
	Smoothing float64
}

// Name implements Aggregator.
func (DawidSkene) Name() string { return "ds" }

// DSFit is a fitted Dawid–Skene model: the per-item decisions plus the
// latent quantities the EM estimated on the way there. It is the common
// output shape of the batch pass (DawidSkene.Fit) and the incremental
// pass (OnlineDawidSkene.Finalize), which lets tests assert the two
// converge to the same model, not just the same labels.
type DSFit struct {
	// Decisions maps item key → fitted decision.
	Decisions map[string]Decision
	// Labels is the sorted label universe the fit ran over.
	Labels []string
	// Priors maps label → fitted class prior P(truth = label).
	Priors map[string]float64
	// Confusion maps worker → truth label → answered label →
	// P(worker answers | truth).
	Confusion map[string]map[string]map[string]float64
}

// Aggregate implements Aggregator.
func (d DawidSkene) Aggregate(votes map[string][]Vote) map[string]Decision {
	return d.Fit(votes).Decisions
}

// Fit runs the EM to convergence and returns the full fitted model,
// including the per-worker confusion matrices Aggregate discards.
func (d DawidSkene) Fit(votes map[string][]Vote) DSFit {
	maxIter := d.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	tol := d.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	smooth := d.Smoothing
	if smooth <= 0 {
		smooth = 0.01
	}

	labels := labelSet(votes)
	workers := workerSet(votes)
	items := itemKeys(votes)
	if len(labels) == 0 || len(items) == 0 {
		return DSFit{Decisions: map[string]Decision{}}
	}
	L := len(labels)
	labelIdx := make(map[string]int, L)
	for i, l := range labels {
		labelIdx[l] = i
	}
	workerIdx := make(map[string]int, len(workers))
	for i, w := range workers {
		workerIdx[w] = i
	}

	// Initialize posteriors from vote proportions (soft majority vote).
	post := make([][]float64, len(items)) // item × label
	for i, item := range items {
		post[i] = make([]float64, L)
		for _, v := range votes[item] {
			post[i][labelIdx[v.Value]]++
		}
		normalize(post[i])
	}

	priors := make([]float64, L)
	// conf[w][k][l] = P(worker w answers l | truth k)
	conf := make([][][]float64, len(workers))
	for w := range conf {
		conf[w] = make([][]float64, L)
		for k := range conf[w] {
			conf[w][k] = make([]float64, L)
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		// M step: class priors.
		for k := range priors {
			priors[k] = 0
		}
		for i := range items {
			for k := 0; k < L; k++ {
				priors[k] += post[i][k]
			}
		}
		normalize(priors)

		// M step: worker confusion matrices with Laplace smoothing.
		for w := range conf {
			for k := 0; k < L; k++ {
				for l := 0; l < L; l++ {
					conf[w][k][l] = smooth
				}
			}
		}
		for i, item := range items {
			for _, v := range votes[item] {
				w := workerIdx[v.Worker]
				l := labelIdx[v.Value]
				for k := 0; k < L; k++ {
					conf[w][k][l] += post[i][k]
				}
			}
		}
		for w := range conf {
			for k := 0; k < L; k++ {
				normalize(conf[w][k])
			}
		}

		// E step: recompute posteriors.
		maxDelta := 0.0
		for i, item := range items {
			next := make([]float64, L)
			for k := 0; k < L; k++ {
				p := priors[k]
				for _, v := range votes[item] {
					p *= conf[workerIdx[v.Worker]][k][labelIdx[v.Value]]
				}
				next[k] = p
			}
			normalize(next)
			for k := 0; k < L; k++ {
				if delta := abs(next[k] - post[i][k]); delta > maxDelta {
					maxDelta = delta
				}
			}
			post[i] = next
		}
		if maxDelta < tol {
			break
		}
	}

	out := make(map[string]Decision, len(items))
	for i, item := range items {
		bestK, bestP := 0, post[i][0]
		for k := 1; k < L; k++ {
			// Strict > keeps the lexicographically smallest label on
			// ties (labels are sorted), matching MajorityVote's
			// deterministic tie-break.
			if post[i][k] > bestP {
				bestK, bestP = k, post[i][k]
			}
		}
		support := 0
		for _, v := range votes[item] {
			if v.Value == labels[bestK] {
				support++
			}
		}
		out[item] = Decision{
			Value:      labels[bestK],
			Confidence: bestP,
			Support:    support,
			Total:      len(votes[item]),
		}
	}

	priorOut := make(map[string]float64, L)
	for k, l := range labels {
		priorOut[l] = priors[k]
	}
	confOut := make(map[string]map[string]map[string]float64, len(workers))
	for w, name := range workers {
		m := make(map[string]map[string]float64, L)
		for k := 0; k < L; k++ {
			row := make(map[string]float64, L)
			for l := 0; l < L; l++ {
				row[labels[l]] = conf[w][k][l]
			}
			m[labels[k]] = row
		}
		confOut[name] = m
	}
	return DSFit{Decisions: out, Labels: labels, Priors: priorOut, Confusion: confOut}
}

// WorkerAccuracies runs the EM and returns each worker's estimated
// probability of answering correctly (the prior-weighted diagonal of their
// confusion matrix). Useful as input to WeightedVote and for lineage
// reports.
func (d DawidSkene) WorkerAccuracies(votes map[string][]Vote) map[string]float64 {
	// Re-run the fit; aggregation is cheap at Reprowd's scales and this
	// keeps Aggregate's contract simple.
	decisions := d.Aggregate(votes)
	labels := labelSet(votes)
	if len(labels) == 0 {
		return map[string]float64{}
	}
	// Score workers against the fitted decisions.
	correct := map[string]float64{}
	total := map[string]float64{}
	for item, vs := range votes {
		dec, ok := decisions[item]
		if !ok {
			continue
		}
		for _, v := range vs {
			total[v.Worker]++
			if v.Value == dec.Value {
				correct[v.Worker] += dec.Confidence
			} else {
				correct[v.Worker] += (1 - dec.Confidence) / float64(max(len(labels)-1, 1))
			}
		}
	}
	out := make(map[string]float64, len(total))
	for w, t := range total {
		if t > 0 {
			out[w] = correct[w] / t
		}
	}
	return out
}

func normalize(v []float64) {
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum <= 0 {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// String renders the configuration, for experiment logs.
func (d DawidSkene) String() string {
	return fmt.Sprintf("DawidSkene(iter=%d tol=%g smooth=%g)", d.MaxIter, d.Tol, d.Smoothing)
}
