package quality

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMajorityVoteBasics(t *testing.T) {
	votes := map[string][]Vote{
		"item1": {{"w1", "yes"}, {"w2", "yes"}, {"w3", "no"}},
		"item2": {{"w1", "no"}, {"w2", "no"}, {"w3", "no"}},
		"item3": {},
	}
	got := MajorityVote{}.Aggregate(votes)
	if len(got) != 2 {
		t.Fatalf("expected 2 decisions, got %d", len(got))
	}
	if d := got["item1"]; d.Value != "yes" || d.Support != 2 || d.Total != 3 || d.Confidence < 0.66 || d.Confidence > 0.67 {
		t.Fatalf("item1 = %+v", d)
	}
	if d := got["item2"]; d.Value != "no" || d.Confidence != 1 {
		t.Fatalf("item2 = %+v", d)
	}
}

func TestMajorityVoteTieBreakDeterministic(t *testing.T) {
	votes := map[string][]Vote{
		"item": {{"w1", "zebra"}, {"w2", "apple"}},
	}
	for i := 0; i < 10; i++ {
		got := MajorityVote{}.Aggregate(votes)
		if got["item"].Value != "apple" {
			t.Fatalf("tie-break not lexicographic: %+v", got["item"])
		}
	}
}

func TestWeightedVote(t *testing.T) {
	votes := map[string][]Vote{
		"item": {{"expert", "yes"}, {"novice1", "no"}, {"novice2", "no"}},
	}
	w := WeightedVote{Weights: map[string]float64{"expert": 0.99, "novice1": 0.4, "novice2": 0.4}}
	got := w.Aggregate(votes)
	if got["item"].Value != "yes" {
		t.Fatalf("expert outweighed: %+v", got["item"])
	}
	// With equal weights it reduces to majority vote.
	eq := WeightedVote{DefaultWeight: 1}
	if eq.Aggregate(votes)["item"].Value != "no" {
		t.Fatal("equal-weight vote should follow the majority")
	}
	// Zero-weight workers are effectively ignored.
	zero := WeightedVote{Weights: map[string]float64{"expert": 1}, DefaultWeight: 0}
	if zero.Aggregate(votes)["item"].Value != "yes" {
		t.Fatal("zero default weight should silence unknown workers")
	}
}

// synthVotes generates votes for n binary items from good workers and
// spammers; returns the votes and the ground truth.
func synthVotes(seed int64, n, goodN int, goodAcc float64, spamN int) (map[string][]Vote, map[string]string) {
	rng := rand.New(rand.NewSource(seed))
	votes := make(map[string][]Vote, n)
	truth := make(map[string]string, n)
	for i := 0; i < n; i++ {
		item := fmt.Sprintf("item-%04d", i)
		tr := "no"
		if rng.Float64() < 0.5 {
			tr = "yes"
		}
		truth[item] = tr
		for g := 0; g < goodN; g++ {
			ans := tr
			if rng.Float64() >= goodAcc {
				if ans == "yes" {
					ans = "no"
				} else {
					ans = "yes"
				}
			}
			votes[item] = append(votes[item], Vote{fmt.Sprintf("good-%d", g), ans})
		}
		for s := 0; s < spamN; s++ {
			ans := "no"
			if rng.Float64() < 0.5 {
				ans = "yes"
			}
			votes[item] = append(votes[item], Vote{fmt.Sprintf("spam-%d", s), ans})
		}
	}
	return votes, truth
}

func accuracy(dec map[string]Decision, truth map[string]string) float64 {
	correct := 0
	for item, tr := range truth {
		if d, ok := dec[item]; ok && d.Value == tr {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

func TestDawidSkeneBeatsMajorityUnderSpam(t *testing.T) {
	// 2 good workers at 0.95 vs 3 spammers: plain MV is badly diluted,
	// DS should discover the spammers and recover.
	votes, truth := synthVotes(20160903, 400, 2, 0.95, 3)
	mvAcc := accuracy(MajorityVote{}.Aggregate(votes), truth)
	dsAcc := accuracy(DawidSkene{}.Aggregate(votes), truth)
	if dsAcc < mvAcc+0.05 {
		t.Fatalf("DS (%.3f) should beat MV (%.3f) clearly under spam", dsAcc, mvAcc)
	}
	if dsAcc < 0.9 {
		t.Fatalf("DS accuracy %.3f too low", dsAcc)
	}
}

func TestDawidSkeneUnanimousMatchesMV(t *testing.T) {
	votes := map[string][]Vote{
		"a": {{"w1", "x"}, {"w2", "x"}, {"w3", "x"}},
		"b": {{"w1", "y"}, {"w2", "y"}, {"w3", "y"}},
	}
	got := DawidSkene{}.Aggregate(votes)
	if got["a"].Value != "x" || got["b"].Value != "y" {
		t.Fatalf("unanimous labels changed: %+v", got)
	}
	if got["a"].Confidence < 0.9 {
		t.Fatalf("unanimous confidence %.3f too low", got["a"].Confidence)
	}
}

func TestDawidSkeneDeterministic(t *testing.T) {
	votes, _ := synthVotes(7, 50, 3, 0.8, 2)
	a := DawidSkene{}.Aggregate(votes)
	b := DawidSkene{}.Aggregate(votes)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Dawid–Skene is nondeterministic on identical input")
	}
}

func TestDawidSkeneEmpty(t *testing.T) {
	if got := (DawidSkene{}).Aggregate(map[string][]Vote{}); len(got) != 0 {
		t.Fatalf("empty input produced %v", got)
	}
}

func TestDawidSkeneWorkerAccuracies(t *testing.T) {
	votes, _ := synthVotes(99, 300, 2, 0.95, 2)
	accs := DawidSkene{}.WorkerAccuracies(votes)
	for g := 0; g < 2; g++ {
		for s := 0; s < 2; s++ {
			good := accs[fmt.Sprintf("good-%d", g)]
			spam := accs[fmt.Sprintf("spam-%d", s)]
			if good <= spam {
				t.Fatalf("good-%d (%.3f) not rated above spam-%d (%.3f)", g, good, s, spam)
			}
		}
	}
}

func TestGLADRecoversLabels(t *testing.T) {
	votes, truth := synthVotes(31, 300, 3, 0.85, 2)
	g := GLAD{Positive: "yes", Negative: "no"}
	gAcc := accuracy(g.Aggregate(votes), truth)
	if gAcc < 0.85 {
		t.Fatalf("GLAD accuracy %.3f too low", gAcc)
	}
}

func TestGLADAbilitiesOrdering(t *testing.T) {
	votes, _ := synthVotes(57, 300, 2, 0.95, 2)
	g := GLAD{Positive: "yes", Negative: "no"}
	ab := g.Abilities(votes)
	if ab["good-0"] <= ab["spam-0"] || ab["good-1"] <= ab["spam-1"] {
		t.Fatalf("abilities do not separate good from spam: %v", ab)
	}
}

func TestGLADIgnoresForeignLabels(t *testing.T) {
	votes := map[string][]Vote{
		"a": {{"w1", "yes"}, {"w2", "whatever"}},
	}
	got := GLAD{Positive: "yes", Negative: "no"}.Aggregate(votes)
	if got["a"].Value != "yes" {
		t.Fatalf("foreign label handling: %+v", got)
	}
}

func TestGoldFilteredBansSpammers(t *testing.T) {
	// Gold items catch the spammer; the inner MV then runs spam-free.
	votes := map[string][]Vote{
		"gold-1": {{"good", "yes"}, {"spam", "no"}},
		"gold-2": {{"good", "no"}, {"spam", "yes"}},
		"real-1": {{"good", "yes"}, {"spam", "no"}, {"spam2", "no"}},
	}
	g := GoldFiltered{
		Gold:        map[string]string{"gold-1": "yes", "gold-2": "no"},
		MinAccuracy: 0.7,
	}
	got := g.Aggregate(votes)
	if _, ok := got["gold-1"]; ok {
		t.Fatal("gold items must not appear in the output")
	}
	// spam answered both golds wrong → banned. spam2 never saw gold →
	// kept. real-1 is then {good: yes, spam2: no} → tie → "no" loses to
	// lexicographic "no" vs "yes"... "no" < "yes", so "no" wins the tie.
	d := got["real-1"]
	if d.Total != 2 {
		t.Fatalf("banned worker still counted: %+v", d)
	}
	if d.Value != "no" {
		t.Fatalf("real-1 = %+v", d)
	}
}

func TestGoldFilteredMinVotes(t *testing.T) {
	votes := map[string][]Vote{
		"gold-1": {{"w", "wrong"}},
		"real-1": {{"w", "yes"}},
	}
	g := GoldFiltered{
		Gold:         map[string]string{"gold-1": "right"},
		MinAccuracy:  0.5,
		MinGoldVotes: 2, // one wrong gold answer is not enough to ban
	}
	got := g.Aggregate(votes)
	if got["real-1"].Value != "yes" {
		t.Fatalf("worker banned on insufficient gold evidence: %+v", got)
	}
}

func TestGoldFilteredAccuraciesAndWeights(t *testing.T) {
	votes := map[string][]Vote{
		"g1": {{"a", "x"}, {"b", "y"}},
		"g2": {{"a", "x"}, {"b", "x"}},
	}
	gold := map[string]string{"g1": "x", "g2": "x"}
	accs := GoldFiltered{Gold: gold}.WorkerGoldAccuracies(votes)
	if accs["a"] != 1.0 || accs["b"] != 0.5 {
		t.Fatalf("gold accuracies: %v", accs)
	}
	wv := EstimateWeights(gold, votes, 0.3)
	if wv.Weights["a"] != 1.0 || wv.Weights["b"] != 0.5 || wv.DefaultWeight != 0.3 {
		t.Fatalf("estimated weights: %+v", wv)
	}
}

func TestAggregatorNames(t *testing.T) {
	cases := []struct {
		agg  Aggregator
		want string
	}{
		{MajorityVote{}, "mv"},
		{WeightedVote{}, "wmv"},
		{DawidSkene{}, "ds"},
		{GLAD{}, "glad"},
		{GoldFiltered{}, "gold+mv"},
		{GoldFiltered{Inner: GLAD{}}, "gold+glad"},
	}
	for _, c := range cases {
		if c.agg.Name() != c.want {
			t.Fatalf("%T.Name() = %q, want %q", c.agg, c.agg.Name(), c.want)
		}
	}
}

// Property: every aggregator returns a decision whose value appeared in the
// votes, with Support ≤ Total and confidence in (0, 1].
func TestQuickAggregatorSanity(t *testing.T) {
	// Vote-counting aggregators must answer with a value from the item's
	// own votes; model-based ones (DS, GLAD) may override an item using
	// globally-estimated worker reliability, but never invent a label
	// outside the global label set.
	local := []Aggregator{
		MajorityVote{},
		WeightedVote{DefaultWeight: 1},
	}
	global := []Aggregator{
		DawidSkene{MaxIter: 10},
		GLAD{Positive: "yes", Negative: "no", MaxIter: 5},
	}
	f := func(raw []uint8) bool {
		votes := map[string][]Vote{}
		for i, b := range raw {
			item := fmt.Sprintf("item-%d", int(b)%7)
			worker := fmt.Sprintf("w-%d", i%5)
			val := "yes"
			if b%2 == 0 {
				val = "no"
			}
			votes[item] = append(votes[item], Vote{worker, val})
		}
		for _, agg := range local {
			for item, d := range agg.Aggregate(votes) {
				found := false
				for _, v := range votes[item] {
					if v.Value == d.Value {
						found = true
					}
				}
				if !found {
					t.Logf("%s invented answer %q for %s", agg.Name(), d.Value, item)
					return false
				}
				if d.Support > d.Total || d.Total != len(votes[item]) {
					t.Logf("%s support/total wrong: %+v (len=%d)", agg.Name(), d, len(votes[item]))
					return false
				}
				if d.Confidence <= 0 || d.Confidence > 1 {
					t.Logf("%s confidence out of range: %+v", agg.Name(), d)
					return false
				}
			}
		}
		for _, agg := range global {
			for item, d := range agg.Aggregate(votes) {
				if d.Value != "yes" && d.Value != "no" {
					t.Logf("%s invented label %q for %s", agg.Name(), d.Value, item)
					return false
				}
				if d.Support > d.Total || d.Total != len(votes[item]) {
					t.Logf("%s support/total wrong: %+v (len=%d)", agg.Name(), d, len(votes[item]))
					return false
				}
				if d.Confidence <= 0 || d.Confidence > 1 {
					t.Logf("%s confidence out of range: %+v", agg.Name(), d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
