package quality

// GoldFiltered screens workers against gold-standard items (items whose
// true answer is known in advance) and runs an inner aggregator over the
// votes of workers who pass. This is the classic "qualification test /
// honeypot" technique: cheap, model-free, and very effective against
// spammers — at the cost of spending some crowd budget on known answers.
type GoldFiltered struct {
	// Gold maps item key → known true answer.
	Gold map[string]string
	// MinAccuracy is the pass threshold on gold items, e.g. 0.7.
	MinAccuracy float64
	// MinGoldVotes is how many gold items a worker must have answered to
	// be judged; workers with fewer are kept (benefit of the doubt).
	// Zero means 1.
	MinGoldVotes int
	// Inner aggregates the surviving votes; nil means MajorityVote.
	Inner Aggregator
}

// Name implements Aggregator.
func (g GoldFiltered) Name() string {
	inner := g.Inner
	if inner == nil {
		inner = MajorityVote{}
	}
	return "gold+" + inner.Name()
}

// Aggregate implements Aggregator.
func (g GoldFiltered) Aggregate(votes map[string][]Vote) map[string]Decision {
	inner := g.Inner
	if inner == nil {
		inner = MajorityVote{}
	}
	minVotes := g.MinGoldVotes
	if minVotes <= 0 {
		minVotes = 1
	}

	acc := g.WorkerGoldAccuracies(votes)
	banned := map[string]bool{}
	counts := g.workerGoldCounts(votes)
	for w, a := range acc {
		if counts[w] >= minVotes && a < g.MinAccuracy {
			banned[w] = true
		}
	}

	filtered := make(map[string][]Vote, len(votes))
	for item, vs := range votes {
		if _, isGold := g.Gold[item]; isGold {
			continue // gold items are not part of the output
		}
		var kept []Vote
		for _, v := range vs {
			if !banned[v.Worker] {
				kept = append(kept, v)
			}
		}
		if len(kept) > 0 {
			filtered[item] = kept
		}
	}
	return inner.Aggregate(filtered)
}

// WorkerGoldAccuracies returns each worker's accuracy measured on the gold
// items they answered. Workers who answered no gold items are absent.
func (g GoldFiltered) WorkerGoldAccuracies(votes map[string][]Vote) map[string]float64 {
	correct := map[string]int{}
	total := map[string]int{}
	for item, truth := range g.Gold {
		for _, v := range votes[item] {
			total[v.Worker]++
			if v.Value == truth {
				correct[v.Worker]++
			}
		}
	}
	out := make(map[string]float64, len(total))
	for w, t := range total {
		out[w] = float64(correct[w]) / float64(t)
	}
	return out
}

func (g GoldFiltered) workerGoldCounts(votes map[string][]Vote) map[string]int {
	total := map[string]int{}
	for item := range g.Gold {
		for _, v := range votes[item] {
			total[v.Worker]++
		}
	}
	return total
}

// EstimateWeights is a convenience for building a WeightedVote from gold
// accuracies: workers get their measured accuracy as weight, unknown
// workers get def.
func EstimateWeights(gold map[string]string, votes map[string][]Vote, def float64) WeightedVote {
	g := GoldFiltered{Gold: gold}
	return WeightedVote{Weights: g.WorkerGoldAccuracies(votes), DefaultWeight: def}
}
