package quality

import (
	"fmt"
	"testing"
)

// Ablation A5 support: cost of each aggregator at experiment scale.

func benchVotes(nItems, nWorkers int) map[string][]Vote {
	votes := make(map[string][]Vote, nItems)
	for i := 0; i < nItems; i++ {
		item := fmt.Sprintf("item-%05d", i)
		for w := 0; w < nWorkers; w++ {
			val := "yes"
			if (i+w)%3 == 0 {
				val = "no"
			}
			votes[item] = append(votes[item], Vote{Worker: fmt.Sprintf("w-%d", w), Value: val})
		}
	}
	return votes
}

func benchAggregator(b *testing.B, agg Aggregator, nItems, nWorkers int) {
	votes := benchVotes(nItems, nWorkers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := agg.Aggregate(votes); len(got) != nItems {
			b.Fatalf("%d decisions", len(got))
		}
	}
}

func BenchmarkMajorityVote_1kItems_5Workers(b *testing.B) {
	benchAggregator(b, MajorityVote{}, 1000, 5)
}

func BenchmarkWeightedVote_1kItems_5Workers(b *testing.B) {
	benchAggregator(b, WeightedVote{DefaultWeight: 1}, 1000, 5)
}

func BenchmarkDawidSkene_1kItems_5Workers(b *testing.B) {
	benchAggregator(b, DawidSkene{MaxIter: 20}, 1000, 5)
}

func BenchmarkGLAD_1kItems_5Workers(b *testing.B) {
	benchAggregator(b, GLAD{Positive: "yes", Negative: "no", MaxIter: 10}, 1000, 5)
}

func BenchmarkDawidSkene_Scaling(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("items-%d", n), func(b *testing.B) {
			benchAggregator(b, DawidSkene{MaxIter: 20}, n, 5)
		})
	}
}
