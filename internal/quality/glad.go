package quality

import "math"

// GLAD is a simplified implementation of Whitehill et al.'s GLAD model for
// binary labels: each worker has an ability α, each item a difficulty
// 1/β (β > 0), and the probability a worker answers correctly is
// σ(α·β). Abilities and difficulties are fit by alternating E steps
// (posterior over true labels) and gradient M steps.
//
// Compared to Dawid–Skene, GLAD can explain an item that even good workers
// miss as "hard" rather than blaming the workers, which matters under
// heterogeneous task difficulty.
type GLAD struct {
	// Positive and Negative are the two labels. Votes with any other
	// value are ignored.
	Positive, Negative string
	// MaxIter caps EM iterations. Zero means 30.
	MaxIter int
	// LearningRate scales the gradient steps. Zero means 0.1.
	LearningRate float64
	// GradSteps is the number of gradient updates per M step. Zero
	// means 5.
	GradSteps int
}

// Name implements Aggregator.
func (GLAD) Name() string { return "glad" }

// Aggregate implements Aggregator.
func (g GLAD) Aggregate(votes map[string][]Vote) map[string]Decision {
	maxIter := g.MaxIter
	if maxIter <= 0 {
		maxIter = 30
	}
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	steps := g.GradSteps
	if steps <= 0 {
		steps = 5
	}

	items := itemKeys(votes)
	workers := workerSet(votes)
	workerIdx := make(map[string]int, len(workers))
	for i, w := range workers {
		workerIdx[w] = i
	}

	// Per-item binary votes: +1 for Positive, -1 for Negative.
	type bvote struct {
		w int
		l float64
	}
	bvotes := make([][]bvote, len(items))
	for i, item := range items {
		for _, v := range votes[item] {
			switch v.Value {
			case g.Positive:
				bvotes[i] = append(bvotes[i], bvote{workerIdx[v.Worker], +1})
			case g.Negative:
				bvotes[i] = append(bvotes[i], bvote{workerIdx[v.Worker], -1})
			}
		}
	}

	alpha := make([]float64, len(workers)) // worker ability
	for i := range alpha {
		alpha[i] = 1
	}
	logBeta := make([]float64, len(items)) // log inverse-difficulty
	post := make([]float64, len(items))    // P(label = Positive)
	for i := range post {
		post[i] = 0.5
	}

	sigmoid := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

	for iter := 0; iter < maxIter; iter++ {
		// E step: posterior over true labels given α, β.
		for i := range items {
			logOdds := 0.0 // uniform prior
			for _, bv := range bvotes[i] {
				p := clampProb(sigmoid(alpha[bv.w] * math.Exp(logBeta[i])))
				// Vote +1 supports Positive with prob p if true label
				// is Positive, and with prob 1-p if Negative.
				if bv.l > 0 {
					logOdds += math.Log(p) - math.Log(1-p)
				} else {
					logOdds += math.Log(1-p) - math.Log(p)
				}
			}
			post[i] = clampProb(sigmoid(logOdds))
		}

		// M step: gradient ascent on expected log likelihood.
		for s := 0; s < steps; s++ {
			gradA := make([]float64, len(alpha))
			gradB := make([]float64, len(logBeta))
			for i := range items {
				beta := math.Exp(logBeta[i])
				for _, bv := range bvotes[i] {
					p := clampProb(sigmoid(alpha[bv.w] * beta))
					// P(vote correct | true label): correct when vote
					// sign matches label. Expected indicator:
					eCorrect := post[i]
					if bv.l < 0 {
						eCorrect = 1 - post[i]
					}
					// d/dx log P = (eCorrect - p) * dx of (α·β)
					diff := eCorrect - p
					gradA[bv.w] += diff * beta
					gradB[i] += diff * alpha[bv.w] * beta // chain through logBeta
				}
			}
			for w := range alpha {
				alpha[w] += lr * gradA[w]
			}
			for i := range logBeta {
				logBeta[i] += lr * gradB[i]
			}
		}
	}

	out := make(map[string]Decision, len(items))
	for i, item := range items {
		if len(bvotes[i]) == 0 {
			continue
		}
		value, conf := g.Positive, post[i]
		if post[i] < 0.5 {
			value, conf = g.Negative, 1-post[i]
		}
		support := 0
		for _, v := range votes[item] {
			if v.Value == value {
				support++
			}
		}
		out[item] = Decision{Value: value, Confidence: conf, Support: support, Total: len(votes[item])}
	}
	return out
}

// Abilities fits the model and returns the estimated worker abilities α
// (higher is better; 0 is chance, negative is adversarial).
func (g GLAD) Abilities(votes map[string][]Vote) map[string]float64 {
	// Fit once through Aggregate's internals would require exposing
	// state; a second fit is cheap and keeps the API minimal.
	workers := workerSet(votes)
	decisions := g.Aggregate(votes)
	// Score ability as calibrated agreement with the fitted labels.
	agree := map[string]float64{}
	total := map[string]float64{}
	for item, vs := range votes {
		dec, ok := decisions[item]
		if !ok {
			continue
		}
		for _, v := range vs {
			total[v.Worker]++
			if v.Value == dec.Value {
				agree[v.Worker]++
			}
		}
	}
	out := make(map[string]float64, len(workers))
	for _, w := range workers {
		if total[w] == 0 {
			continue
		}
		acc := agree[w] / total[w]
		// Map accuracy to a logit-style ability score.
		out[w] = math.Log(clampProb(acc) / (1 - clampProb(acc)))
	}
	return out
}

func clampProb(p float64) float64 {
	const eps = 1e-9
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}
