package repl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// leaderEnv is a journaled engine served over HTTP with the replication
// endpoints mounted — a complete leader, in-process.
type leaderEnv struct {
	t       *testing.T
	db      *storage.DB
	journal *platform.Journal
	engine  *platform.Engine
	cp      *platform.Checkpointer
	node    *Node
	hs      *httptest.Server
}

// newLeaderEnv builds a leader. checkpointEvery > 0 attaches a
// checkpointer cutting snapshots at that event cadence.
func newLeaderEnv(t *testing.T, checkpointEvery uint64) *leaderEnv {
	t.Helper()
	dir := t.TempDir()
	db, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	journal, err := platform.OpenJournal(db)
	if err != nil {
		db.Close()
		t.Fatalf("open journal: %v", err)
	}
	engine, err := platform.NewEngineOpts(platform.EngineOptions{
		Clock:   vclock.NewVirtual(),
		Journal: journal,
	})
	if err != nil {
		db.Close()
		t.Fatalf("engine: %v", err)
	}
	env := &leaderEnv{t: t, db: db, journal: journal, engine: engine}
	if checkpointEvery > 0 {
		env.cp, err = platform.NewCheckpointer(engine, platform.CheckpointOptions{
			EveryEvents:     checkpointEvery,
			CompactMinBytes: 32 << 10,
		})
		if err != nil {
			db.Close()
			t.Fatalf("checkpointer: %v", err)
		}
	}
	env.node = NewLeaderNode(engine, journal, db)
	srv := platform.NewServer(engine)
	srv.Handle("/api/repl/", env.node.Handler())
	env.hs = httptest.NewServer(srv)
	t.Cleanup(func() {
		env.hs.Close()
		env.journal.Close()
		if env.cp != nil {
			env.cp.Close()
		}
		env.node.Close()
		env.db.Close()
	})
	return env
}

// buildHistory creates a redundancy-1 project named name with n tasks,
// each retired by one submission, and returns the project and the number
// of journal events this produced (1 project + task batches + n runs).
func buildHistory(t *testing.T, engine *platform.Engine, name string, n int) (platform.Project, uint64) {
	t.Helper()
	p, err := engine.EnsureProject(platform.ProjectSpec{Name: name, Redundancy: 1})
	if err != nil {
		t.Fatalf("ensure project: %v", err)
	}
	const batch = 256
	batches := uint64(0)
	for off := 0; off < n; off += batch {
		end := off + batch
		if end > n {
			end = n
		}
		specs := make([]platform.TaskSpec, end-off)
		for i := range specs {
			specs[i] = platform.TaskSpec{
				ExternalID: fmt.Sprintf("%s-%d", name, off+i),
				Payload:    map[string]string{"q": fmt.Sprintf("item %d", off+i)},
			}
		}
		tasks, err := engine.AddTasks(p.ID, specs)
		if err != nil {
			t.Fatalf("add tasks: %v", err)
		}
		for i, task := range tasks {
			if _, err := engine.Submit(task.ID, fmt.Sprintf("w-%d", (off+i)%7), "yes"); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
		batches++
	}
	return p, 1 + batches + uint64(n)
}

// waitLen waits for the journal's committed length to reach want (fast
// acks mean memory can run ahead of the committed log).
func waitLen(t *testing.T, j *platform.Journal, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for j.Len() < want {
		if time.Now().After(deadline) {
			t.Fatalf("journal stuck at %d, want %d", j.Len(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// startFollower boots a replica of env with test-friendly poll settings.
func startFollower(t *testing.T, env *leaderEnv) *Follower {
	t.Helper()
	f, err := StartFollower(FollowerOptions{
		LeaderURL: env.hs.URL,
		Clock:     vclock.NewVirtual(),
		PollWait:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("start follower: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// waitReady waits for the follower to report readiness (requires one
// completed poll confirming the applied position covers the leader
// frontier).
func waitReady(t *testing.T, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := f.stats()
		if st.Ready {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never became ready: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// mustState exports an engine's state at seq.
func mustState(t *testing.T, e *platform.Engine, seq uint64) []byte {
	t.Helper()
	data, err := e.ExportState(seq)
	if err != nil {
		t.Fatalf("export state: %v", err)
	}
	return data
}

// TestFollowerBootstrapByteIdentical is the acceptance test: a follower
// started against a leader with >= 10k retired-task events reaches
// byte-identical engine state via snapshot + tail, and serves the read
// API with the leader's answers.
func TestFollowerBootstrapByteIdentical(t *testing.T) {
	env := newLeaderEnv(t, 1000)
	p, events := buildHistory(t, env.engine, "big", 10000)
	waitLen(t, env.journal, events)
	// Pin a final cut so the bootstrap demonstrably rides the snapshot
	// path (policy cuts already ran; this bounds the tail).
	if err := env.cp.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	f := startFollower(t, env)
	if err := f.WaitFor(events, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	st := f.stats()
	if st.SnapshotSeq == 0 {
		t.Fatalf("follower bootstrapped without a snapshot (stats %+v)", st)
	}
	if tail := events - st.SnapshotSeq; tail > 2*1000 {
		t.Fatalf("bootstrap tail %d events; want <= 2x checkpoint interval", tail)
	}
	waitReady(t, f)

	if l, fo := mustState(t, env.engine, events), mustState(t, f.Engine(), events); !bytes.Equal(l, fo) {
		t.Fatalf("leader and follower state differ: leader %d bytes, follower %d bytes", len(l), len(fo))
	}

	// Read API equivalence over the wire: stats, queue, runs.
	fsrv := httptest.NewServer(platform.NewServer(f.Engine()))
	defer fsrv.Close()
	for _, path := range []string{
		fmt.Sprintf("/api/projects/%d/stats", p.ID),
		fmt.Sprintf("/api/projects/%d/queue", p.ID),
		fmt.Sprintf("/api/tasks/%d/runs", 1),
		fmt.Sprintf("/api/tasks/%d/runs", 9999),
	} {
		lb := httpGet(t, env.hs.URL+path)
		fb := httpGet(t, fsrv.URL+path)
		if !bytes.Equal(lb, fb) {
			t.Fatalf("%s differs:\nleader:   %s\nfollower: %s", path, lb, fb)
		}
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return body
}

// TestFollowerBootstrapMidCheckpoint races the bootstrap against
// leader-side snapshot cuts and concurrent submit load: whatever cut the
// snapshot fetch observes, the stream resumes at exactly its sequence,
// so the follower still converges byte-identically.
func TestFollowerBootstrapMidCheckpoint(t *testing.T) {
	env := newLeaderEnv(t, 0) // manual cuts only
	cp, err := platform.NewCheckpointer(env.engine, platform.CheckpointOptions{
		CompactMinBytes: 32 << 10,
	})
	if err != nil {
		t.Fatalf("checkpointer: %v", err)
	}
	defer cp.Close()
	_, events := buildHistory(t, env.engine, "base", 2000)
	waitLen(t, env.journal, events)
	if err := cp.CheckpointNow(); err != nil {
		t.Fatalf("seed checkpoint: %v", err)
	}

	// Load + cut storm while the follower bootstraps.
	stop := make(chan struct{})
	var loadWG, cutWG sync.WaitGroup
	var extra uint64
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		_, n := buildHistory(t, env.engine, "storm", 2000)
		extra = n
	}()
	cutWG.Add(1)
	go func() {
		defer cutWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := cp.CheckpointNow(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	f := startFollower(t, env)
	loadWG.Wait()
	close(stop)
	cutWG.Wait()
	total := events + extra
	waitLen(t, env.journal, total)
	if err := f.WaitFor(total, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if l, fo := mustState(t, env.engine, total), mustState(t, f.Engine(), total); !bytes.Equal(l, fo) {
		t.Fatal("leader and follower state differ after mid-checkpoint bootstrap")
	}
}

// TestFollowerKillRejoin kills a follower mid-catch-up (a replica holds
// no durable state, so kill -9 and Close are the same event: the state
// vanishes) and rejoins a fresh one after more leader traffic. Rejoin is
// a fresh bootstrap, bounded by the checkpoint interval, and converges
// byte-identically.
func TestFollowerKillRejoin(t *testing.T) {
	env := newLeaderEnv(t, 500)
	_, events := buildHistory(t, env.engine, "one", 1500)
	waitLen(t, env.journal, events)

	f1 := startFollower(t, env)
	// Kill it at whatever progress it reached mid-stream.
	if err := f1.WaitFor(events/3, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	f1.Close()

	_, more := buildHistory(t, env.engine, "two", 1000)
	total := events + more
	waitLen(t, env.journal, total)
	if err := env.cp.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	f2 := startFollower(t, env)
	if err := f2.WaitFor(total, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if st := f2.stats(); st.SnapshotSeq == 0 {
		t.Fatalf("rejoin did not bootstrap from a snapshot: %+v", st)
	}
	if l, fo := mustState(t, env.engine, total), mustState(t, f2.Engine(), total); !bytes.Equal(l, fo) {
		t.Fatal("rejoined follower state differs from leader")
	}
}

// TestStreamSnapshotRequired: a stream position truncated into a
// snapshot gets 410 snapshot_required, the follower's signal to
// re-bootstrap.
func TestStreamSnapshotRequired(t *testing.T) {
	env := newLeaderEnv(t, 100)
	_, events := buildHistory(t, env.engine, "trunc", 400)
	waitLen(t, env.journal, events)
	if err := env.cp.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if env.journal.FirstSeq() == 0 {
		t.Fatal("checkpoint did not truncate the journal")
	}
	resp, err := http.Get(env.hs.URL + "/api/repl/stream?from=0&wait=1ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stream from 0 over a truncated journal: HTTP %d, want 410", resp.StatusCode)
	}
}

// TestFollowerRedirectsWrites: the read replica's HTTP surface rejects
// writes with a 307 to the leader, which stock clients follow — so a
// client pointed at a follower still lands its writes on the leader.
func TestFollowerRedirectsWrites(t *testing.T) {
	env := newLeaderEnv(t, 0)
	_, events := buildHistory(t, env.engine, "seed", 10)
	waitLen(t, env.journal, events)

	f := startFollower(t, env)
	if err := f.WaitFor(events, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(platform.NewServer(f.Engine()))
	defer fsrv.Close()

	// Raw request without redirect-following: observe the 307 itself.
	noRedirect := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	req, _ := http.NewRequest(http.MethodPut, fsrv.URL+"/api/projects",
		bytes.NewReader([]byte(`{"name":"redirected"}`)))
	resp, err := noRedirect.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("write to follower: HTTP %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != env.hs.URL+"/api/projects" {
		t.Fatalf("redirect location %q, want leader %q", loc, env.hs.URL+"/api/projects")
	}

	// The stock platform client follows it end to end.
	client := platform.NewHTTPClient(fsrv.URL, nil)
	p, err := client.EnsureProject(platform.ProjectSpec{Name: "redirected", Redundancy: 1})
	if err != nil {
		t.Fatalf("EnsureProject via follower: %v", err)
	}
	if got, ok, _ := env.engine.FindProject("redirected"); !ok || got.ID != p.ID {
		t.Fatalf("project did not land on the leader (ok=%v)", ok)
	}
	// And reads on the follower still serve locally (no redirect).
	if _, err := platform.NewHTTPClient(fsrv.URL, noRedirect).Stats(1); err != nil {
		t.Fatalf("read on follower: %v", err)
	}
}

// TestPromoteContinuesHistory promotes a caught-up follower into a
// leader with its own store: sequence numbering continues at the applied
// position, writes are accepted, and a second-generation follower
// bootstraps from the promoted node and converges byte-identically.
func TestPromoteContinuesHistory(t *testing.T) {
	env := newLeaderEnv(t, 200)
	_, events := buildHistory(t, env.engine, "gen1", 600)
	waitLen(t, env.journal, events)
	if err := env.cp.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	promoDir := filepath.Join(t.TempDir(), "promoted")
	node, err := NewFollowerNode(FollowerOptions{
		LeaderURL: env.hs.URL,
		Clock:     vclock.NewVirtual(),
		PollWait:  250 * time.Millisecond,
		DataDir:   promoDir,
		Storage:   storage.Options{Sync: storage.SyncNever},
		Checkpoint: platform.CheckpointOptions{
			EveryEvents:     50,
			CompactMinBytes: 32 << 10,
		},
	})
	if err != nil {
		t.Fatalf("follower node: %v", err)
	}
	defer node.Close()
	fsrv := platform.NewServer(node.Engine())
	fsrv.Handle("/api/repl/", node.Handler())
	fhs := httptest.NewServer(fsrv)
	defer fhs.Close()

	if err := node.Follower().WaitFor(events, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	// Fail over via the operator endpoint.
	resp, err := http.Post(fhs.URL+"/api/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: HTTP %d: %s", resp.StatusCode, body)
	}
	var st platform.ReplStats
	if err := json.Unmarshal(body, &st); err != nil || st.Role != RoleLeader {
		t.Fatalf("promote response %s (err %v), want leader role", body, err)
	}

	// The promoted node accepts writes, with sequence numbers continuing
	// where replication stopped.
	engine := node.Engine()
	_, more := buildHistory(t, engine, "gen2", 100)
	client := platform.NewHTTPClient(fhs.URL, nil)
	if _, err := client.EnsureProject(platform.ProjectSpec{Name: "gen2-wire", Redundancy: 1}); err != nil {
		t.Fatalf("write to promoted leader: %v", err)
	}
	total := events + more + 1

	// The promoted leader keeps checkpointing: with ~100 post-promotion
	// events and a 50-event cadence, a fresh cut must land past the
	// promotion seed — otherwise failover silently re-opens the
	// unbounded-journal liability.
	cutDeadline := time.Now().Add(30 * time.Second)
	for {
		if ss := engine.PlatformStats().Snapshot; ss != nil && ss.LastSeq > events {
			break
		}
		if time.Now().After(cutDeadline) {
			t.Fatalf("promoted leader never checkpointed past the promotion seed (stats %+v)",
				engine.PlatformStats().Snapshot)
		}
		time.Sleep(time.Millisecond)
	}

	// Second-generation follower bootstraps from the promoted leader.
	f2, err := StartFollower(FollowerOptions{
		LeaderURL: fhs.URL,
		Clock:     vclock.NewVirtual(),
		PollWait:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("gen2 follower: %v", err)
	}
	defer f2.Close()
	if err := f2.WaitFor(total, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if st := f2.stats(); st.SnapshotSeq < events {
		t.Fatalf("gen2 bootstrap snapshot at %d, want >= promote point %d", st.SnapshotSeq, events)
	}
	if l, fo := mustState(t, engine, total), mustState(t, f2.Engine(), total); !bytes.Equal(l, fo) {
		t.Fatal("gen2 follower state differs from promoted leader")
	}
}

// TestHealthzRoles: healthz reports leader readiness immediately and
// follower readiness only once caught up.
func TestHealthzRoles(t *testing.T) {
	env := newLeaderEnv(t, 0)
	_, events := buildHistory(t, env.engine, "h", 50)
	waitLen(t, env.journal, events)

	var st platform.ReplStats
	if err := json.Unmarshal(httpGet(t, env.hs.URL+"/api/healthz"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != RoleLeader || !st.Ready {
		t.Fatalf("leader healthz %+v, want ready leader", st)
	}

	f := startFollower(t, env)
	if err := f.WaitFor(events, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	waitReady(t, f)
	fsrv := httptest.NewServer(platform.NewServer(f.Engine()))
	defer fsrv.Close()
	if err := json.Unmarshal(httpGet(t, fsrv.URL+"/api/healthz"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != RoleFollower || !st.Ready || st.AppliedSeq != events {
		t.Fatalf("follower healthz %+v, want ready follower at %d", st, events)
	}
}

// TestStreamWireNegotiation pins the dual-codec contract of the stream
// and snapshot endpoints: a peer sending Accept with the frame content
// type gets CRC-framed binary, everyone else keeps the legacy JSONL/JSON
// wire — and both decode to identical events. This is what lets a new
// follower poll an old leader (no frames offered, JSONL fallback) and an
// old follower poll a new leader (no Accept, JSONL served) during a
// rolling upgrade.
func TestStreamWireNegotiation(t *testing.T) {
	env := newLeaderEnv(t, 0)
	_, events := buildHistory(t, env.engine, "wire", 64)
	waitLen(t, env.journal, events)

	fetch := func(path string, frames bool) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, env.hs.URL+path, nil)
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		if frames {
			req.Header.Set("Accept", platform.FrameContentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("fetch %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fetch %s: HTTP %d", path, resp.StatusCode)
		}
		return resp
	}
	streamPath := fmt.Sprintf("/api/repl/stream?from=0&wait=0s&max=%d", events)

	// Legacy wire: no Accept header, JSONL body.
	resp := fetch(streamPath, false)
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("legacy stream Content-Type = %q", ct)
	}
	var legacy []StreamEvent
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var se StreamEvent
		if err := dec.Decode(&se); err != nil {
			t.Fatalf("decode JSONL: %v", err)
		}
		legacy = append(legacy, se)
	}
	resp.Body.Close()

	// Negotiated wire: CRC-framed binary.
	resp = fetch(streamPath, true)
	if ct := resp.Header.Get("Content-Type"); ct != platform.FrameContentType {
		t.Fatalf("framed stream Content-Type = %q", ct)
	}
	var framed []StreamEvent
	br := bufio.NewReader(resp.Body)
	var scratch []byte
	for {
		seq, ev, err := platform.ReadStreamFrame(br, &scratch)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decode frame: %v", err)
		}
		framed = append(framed, StreamEvent{Seq: seq, Event: ev})
	}
	resp.Body.Close()

	if len(legacy) != int(events) || len(framed) != int(events) {
		t.Fatalf("event counts: legacy %d framed %d, want %d", len(legacy), len(framed), events)
	}
	for i := range legacy {
		lj, _ := json.Marshal(legacy[i])
		fj, _ := json.Marshal(framed[i])
		if !bytes.Equal(lj, fj) {
			t.Fatalf("event %d differs across wires:\n  jsonl: %s\n  frame: %s", i, lj, fj)
		}
	}

	// Snapshot endpoint: cut one manually, then fetch it both ways.
	state := mustState(t, env.engine, events)
	if _, err := storage.WriteSnapshot(env.db, platform.SnapshotPrefix, 1, events, state); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	resp = fetch("/api/repl/snapshot", false)
	plain, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("legacy snapshot Content-Type = %q", ct)
	}
	resp = fetch("/api/repl/snapshot", true)
	wrapped, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read framed snapshot: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != platform.FrameContentType {
		t.Fatalf("framed snapshot Content-Type = %q", ct)
	}
	unwrapped, err := platform.DecodeSnapshotFrame(wrapped)
	if err != nil {
		t.Fatalf("unwrap snapshot frame: %v", err)
	}
	if !bytes.Equal(plain, unwrapped) {
		t.Fatalf("snapshot payload differs across wires (%d vs %d bytes)", len(plain), len(unwrapped))
	}
}
