package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/platform"
)

// ProbeHealth fetches a node's GET /api/healthz and returns its
// replication view — the primitive a router (internal/gate) builds its
// topology picture from. The endpoint answers 200 when the node can serve
// its role and 503 while it cannot (a follower still bootstrapping); both
// carry the same ReplStats body, so both decode successfully and the
// caller reads st.Ready for the verdict. Any other status, a transport
// failure, or an undecodable body returns an error: the node is
// unreachable or not a reprowd server at all.
func ProbeHealth(hc *http.Client, baseURL string) (platform.ReplStats, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(strings.TrimRight(baseURL, "/") + "/api/healthz")
	if err != nil {
		return platform.ReplStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		io.Copy(io.Discard, resp.Body)
		return platform.ReplStats{}, fmt.Errorf("repl: probe %s: HTTP %d", baseURL, resp.StatusCode)
	}
	var st platform.ReplStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return platform.ReplStats{}, fmt.Errorf("repl: probe %s: decode healthz: %w", baseURL, err)
	}
	return st, nil
}
