package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// wantsFrames reports whether the peer negotiated the binary frame wire
// (platform's CRC-framed event codec) instead of legacy JSONL/JSON. New
// followers send the Accept header; old peers and curl get JSON, so the
// endpoints stay debuggable and mixed-version clusters keep replicating.
func wantsFrames(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), platform.FrameContentType)
}

// StreamEvent is one line of the stream response: a committed journal
// event and its sequence number. The stream body is newline-delimited
// JSON of these, in sequence order.
type StreamEvent struct {
	Seq   uint64         `json:"seq"`
	Event platform.Event `json:"event"`
}

// Stream response headers.
const (
	// HeaderFrontier carries the leader's journal length (the next
	// sequence to be assigned) at response time — the follower's lag
	// reference.
	HeaderFrontier = "X-Repl-Frontier"
	// HeaderSnapshotSeq carries a snapshot response's cut sequence.
	HeaderSnapshotSeq = "X-Repl-Snapshot-Seq"
	// HeaderReplEpoch carries the serving leader's fencing token on
	// stream and snapshot responses. A follower tracks the newest token
	// it has seen and refuses frames stamped with an older one — the
	// replication-path half of split-brain protection (the write path's
	// is platform.HeaderEpoch).
	HeaderReplEpoch = "X-Repl-Epoch"
)

// Defaults for the stream endpoint's query knobs.
const (
	defaultStreamWait = 10 * time.Second
	maxStreamWait     = 30 * time.Second
	defaultStreamMax  = 4096
	maxStreamMax      = 16384
)

// Leader serves a journaled engine's replication feed. It taps the
// journal's committed-event pipeline to learn the durable frontier and
// wake long-polling streams, and reads catch-up events straight from the
// journal's store — the journal is the replication log; nothing is
// duplicated.
type Leader struct {
	j     *platform.Journal
	db    *storage.DB
	clock vclock.Clock

	cancelTap func()

	mu       sync.Mutex
	frontier uint64        // next sequence the committed log will assign
	wake     chan struct{} // closed and replaced whenever frontier advances

	activeStreams  atomic.Int64
	eventsStreamed atomic.Uint64
}

// NewLeader binds a replication feed to a journal and its backing store,
// pacing long-poll waits on the wall clock. Close detaches the tap.
func NewLeader(j *platform.Journal, db *storage.DB) *Leader {
	return NewLeaderClock(j, db, nil)
}

// NewLeaderClock is NewLeader with an injected clock for the stream's
// long-poll deadlines (nil defaults to wall time). A simulated cluster
// passes its vclock.Sim so a "10s" poll window elapses in virtual time.
func NewLeaderClock(j *platform.Journal, db *storage.DB, clock vclock.Clock) *Leader {
	if clock == nil {
		clock = vclock.NewWall()
	}
	l := &Leader{j: j, db: db, clock: clock, wake: make(chan struct{})}
	l.frontier = j.Len()
	l.cancelTap = j.AddTap(l.observe)
	if reg := j.Metrics(); reg != nil {
		reg.GaugeFunc("reprowd_repl_active_streams",
			"Replication stream long polls currently being served.",
			func() float64 { return float64(l.activeStreams.Load()) })
		reg.CounterFunc("reprowd_repl_streamed_events_total",
			"Journal events shipped to followers over the replication stream.",
			l.eventsStreamed.Load)
		reg.GaugeFunc("reprowd_repl_frontier",
			"Leader's committed journal frontier (next sequence to assign).",
			func() float64 { f, _ := l.current(); return float64(f) })
	}
	return l
}

// Close detaches the journal tap. In-flight stream requests finish their
// current poll.
func (l *Leader) Close() {
	if l.cancelTap != nil {
		l.cancelTap()
		l.cancelTap = nil
	}
}

// observe is the journal committer's tap: advance the frontier and wake
// every waiting stream. O(1), called in sequence order after each flush.
func (l *Leader) observe(seq uint64, _ platform.Event, _ int) {
	l.mu.Lock()
	if seq+1 > l.frontier {
		l.frontier = seq + 1
		close(l.wake)
		l.wake = make(chan struct{})
	}
	l.mu.Unlock()
}

// current returns the committed frontier and the channel closed when it
// next advances.
func (l *Leader) current() (uint64, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frontier, l.wake
}

// errStop ends a collect scan that has filled its batch.
var errStop = errors.New("repl: batch full")

// collect reads up to max committed events starting at from into memory
// (the store scan holds a read lock, so events are never shipped to a
// slow client mid-scan). snapshotRequired is true when from precedes the
// journal's first live sequence — the events were folded into a snapshot.
func (l *Leader) collect(from uint64, max int) (evs []StreamEvent, snapshotRequired bool, err error) {
	if from < l.j.FirstSeq() {
		return nil, true, nil
	}
	next := from
	err = l.j.EventsFrom(from, func(seq uint64, ev platform.Event, _ int) error {
		if len(evs) >= max {
			return errStop
		}
		if seq != next {
			if len(evs) == 0 && seq > from {
				// Truncated between the FirstSeq check and the scan.
				return errStop
			}
			return fmt.Errorf("repl: journal gap at %d (want %d)", seq, next)
		}
		evs = append(evs, StreamEvent{Seq: seq, Event: ev})
		next++
		return nil
	})
	if err == errStop {
		err = nil
	}
	if err == nil && len(evs) == 0 && from < l.j.FirstSeq() {
		return nil, true, nil
	}
	return evs, false, err
}

// handleStream is GET /api/repl/stream?from=N[&wait=10s][&max=4096]: a
// long poll for committed events at or after from. The response is JSONL
// StreamEvents (possibly empty if the wait expired with nothing new),
// with HeaderFrontier reporting the leader's committed length. A from
// below the journal's truncation point gets 410 Gone with code
// "snapshot_required" — the follower must bootstrap from the snapshot.
func (l *Leader) handleStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil && q.Get("from") != "" {
		httpError(w, http.StatusBadRequest, "bad_request", "malformed from sequence")
		return
	}
	wait := defaultStreamWait
	if s := q.Get("wait"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "malformed wait duration")
			return
		}
		wait = min(max(d, 0), maxStreamWait)
	}
	limit := defaultStreamMax
	if s := q.Get("max"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad_request", "malformed max")
			return
		}
		limit = min(n, maxStreamMax)
	}

	l.activeStreams.Add(1)
	defer l.activeStreams.Add(-1)

	// Preflight before committing to a 200: the requested position must
	// still be live (a truncation mid-stream just ends the body; the
	// next poll surfaces the 410).
	if from < l.j.FirstSeq() {
		httpError(w, http.StatusGone, "snapshot_required", ErrSnapshotRequired.Error())
		return
	}
	// Headers go out immediately — the follower's client returns from its
	// round trip here and knows the link is up — then events stream into
	// the open body as they commit, until the first delivered batch or
	// the wait window ends. The frontier header is the commit position at
	// request time; the body may run past it.
	frontier, _ := l.current()
	binaryWire := wantsFrames(r)
	if binaryWire {
		w.Header().Set("Content-Type", platform.FrameContentType)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set(HeaderFrontier, strconv.FormatUint(frontier, 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	enc := json.NewEncoder(w)
	var frame []byte // reused across events on the binary wire
	sent := 0
	deadline := l.clock.Now().Add(wait)
	for {
		evs, snapReq, err := l.collect(from, limit-sent)
		if err != nil || snapReq {
			return // body ends; the next poll gets the verdict as a status
		}
		if len(evs) > 0 {
			for i := range evs {
				se := &evs[i]
				var err error
				if binaryWire {
					frame = platform.AppendStreamFrame(frame[:0], se.Seq, &se.Event)
					_, err = w.Write(frame)
				} else {
					err = enc.Encode(se)
				}
				if err != nil {
					return // client went away
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
			l.eventsStreamed.Add(uint64(len(evs)))
			sent += len(evs)
			from = evs[len(evs)-1].Seq + 1
			if sent >= limit {
				return
			}
		}
		frontier, wake := l.current()
		if frontier > from {
			continue // committed between collect and current; rescan
		}
		remaining := deadline.Sub(l.clock.Now())
		if remaining <= 0 {
			return
		}
		// The abandoned After channel (when wake or the request context
		// wins the select) fires at its deadline and is then garbage —
		// bounded by maxStreamWait, the same lifetime a time.After would
		// have had.
		select {
		case <-wake:
		case <-l.clock.After(remaining):
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleSnapshot is GET /api/repl/snapshot: the latest snapshot record's
// payload, verbatim (the deterministic engine-state JSON the checkpointer
// cut), with its cut sequence in HeaderSnapshotSeq. 404 with code
// "no_snapshot" when the leader has never checkpointed — the follower
// then bootstraps from sequence zero.
func (l *Leader) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	info, data, ok, err := storage.ReadSnapshot(l.db, platform.SnapshotPrefix)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no_snapshot", "leader has no snapshot yet")
		return
	}
	frontier, _ := l.current()
	if wantsFrames(r) {
		w.Header().Set("Content-Type", platform.FrameContentType)
		data = platform.AppendSnapshotFrame(nil, data)
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	w.Header().Set(HeaderSnapshotSeq, strconv.FormatUint(info.Seq, 10))
	w.Header().Set(HeaderFrontier, strconv.FormatUint(frontier, 10))
	w.Write(data)
}

// stats is the leader's replication view.
func (l *Leader) stats() platform.ReplStats {
	frontier, _ := l.current()
	return platform.ReplStats{
		Role:           RoleLeader,
		Ready:          true,
		AppliedSeq:     frontier,
		ActiveStreams:  l.activeStreams.Load(),
		EventsStreamed: l.eventsStreamed.Load(),
	}
}

// httpError writes the platform API's JSON error shape.
func httpError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}{Error: msg, Code: code})
}
