package repl

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: two routers with the same membership agree on
// every key — the property a fleet of front-ends depends on.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(0, "n1", "n2", "n3")
	b := NewRing(0, "n3", "n1", "n2") // different insertion order
	for id := int64(1); id <= 5000; id++ {
		if ga, gb := a.Lookup(id), b.Lookup(id); ga != gb {
			t.Fatalf("project %d: ring a says %s, ring b says %s", id, ga, gb)
		}
	}
	if a.LookupString("er-pairs") != b.LookupString("er-pairs") {
		t.Fatal("string routing disagrees across equal rings")
	}
}

// TestRingBalance: virtual nodes spread sequential project ids (the id
// scheme the engine actually hands out) across members without a
// pathological skew.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r := NewRing(0, nodes...)
	counts := make(map[string]int)
	const keys = 20000
	for id := int64(1); id <= keys; id++ {
		counts[r.Lookup(id)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of the keyspace: %v", n, share*100, counts)
		}
	}
}

// TestRingMinimalMovement: removing a node moves only its own keys —
// everything owned by a surviving node stays put, so a leader failure
// never reshuffles healthy partitions.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(0, "n1", "n2", "n3", "n4")
	before := make(map[int64]string)
	for id := int64(1); id <= 10000; id++ {
		before[id] = r.Lookup(id)
	}
	r.Remove("n2")
	moved := 0
	for id, owner := range before {
		got := r.Lookup(id)
		if owner != "n2" {
			if got != owner {
				t.Fatalf("project %d moved %s -> %s though %s survived", id, owner, got, owner)
			}
			continue
		}
		if got == "n2" {
			t.Fatalf("project %d still routed to removed node", id)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("removed node owned nothing; balance test should have caught this")
	}
	if got := len(r.Nodes()); got != 3 {
		t.Fatalf("membership %d, want 3", got)
	}
	// Re-adding restores the original map exactly (hash is unseeded).
	r.Add("n2")
	for id, owner := range before {
		if got := r.Lookup(id); got != owner {
			t.Fatalf("project %d: %s after re-add, want %s", id, got, owner)
		}
	}
	if fmt.Sprint(r.Nodes()) != "[n1 n2 n3 n4]" {
		t.Fatalf("nodes %v", r.Nodes())
	}
}

// TestRingEmpty: lookups on an empty ring return "".
func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup(42); got != "" {
		t.Fatalf("empty ring routed to %q", got)
	}
}
