package repl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// writeStatsJSON writes a ReplStats body (Content-Type already set).
func writeStatsJSON(w http.ResponseWriter, st platform.ReplStats) {
	json.NewEncoder(w).Encode(st)
}

// Node is one replication participant: a leader serving the journal feed,
// or a follower pumping it — and, after Promote, both in succession. It
// owns the /api/repl/* HTTP surface (mounted on the platform server with
// Server.Handle) and provides the ReplStats the platform's /api/stats and
// /api/healthz report:
//
//	GET  /api/repl/stream?from=N   → committed events, long-poll (leader)
//	GET  /api/repl/snapshot        → latest snapshot record (leader)
//	GET  /api/repl/status          → this node's ReplStats
//	POST /api/repl/promote         → follower → leader transition
//	                                 (?epoch=N&holder=H mints that token;
//	                                 omitted, the node mints the next one)
//	POST /api/repl/fence           → depose this node (?token=E:H)
type Node struct {
	engine *platform.Engine
	mux    *http.ServeMux

	mu        sync.Mutex
	role      string
	leader    *Leader   // non-nil while serving the feed
	follower  *Follower // non-nil while following
	promoting bool      // a Promote is in flight; serializes racing requests
	warn      string    // non-fatal degradation (promotion checkpointer failure)
	closed    bool

	// Identity and fencing state. name/partition come from SetIdentity
	// (empty on pre-election deployments); epoch is the node's fencing
	// token — the one its journal was promoted in on a leader, the newest
	// observed on a follower's behalf the feed's stamp. fenced marks a
	// deposed leader: a strictly newer token was proven (a stamped write,
	// an elector's fence call, or the persisted record of either after a
	// restart) and the node accepts and replicates nothing until it
	// rejoins as a follower.
	name      string
	partition string
	epoch     platform.EpochToken
	fenced    bool

	// Resources acquired by a durable promotion, closed by Close.
	ownedJournal *platform.Journal
	ownedCP      *platform.Checkpointer
	ownedDB      *storage.DB
}

// NewLeaderNode wires a journaled engine as a replication leader. The
// engine, journal and db stay owned by the caller (the server already
// manages their shutdown); Close only detaches the feed's tap.
func NewLeaderNode(engine *platform.Engine, j *platform.Journal, db *storage.DB) *Node {
	return NewLeaderNodeClock(engine, j, db, nil)
}

// NewLeaderNodeClock is NewLeaderNode with an injected clock pacing the
// feed's long-poll deadlines (nil = wall). The simulation harness passes
// its vclock.Sim here; production and existing tests keep wall pacing —
// deliberately NOT the engine's clock, since engines commonly run on an
// auto-advancing Virtual clock that would make every long poll expire
// instantly.
func NewLeaderNodeClock(engine *platform.Engine, j *platform.Journal, db *storage.DB, clock vclock.Clock) *Node {
	n := &Node{engine: engine, role: RoleLeader, leader: NewLeaderClock(j, db, clock)}
	n.init()
	return n
}

// NewFollowerNode bootstraps a follower (see StartFollower) and wires it
// as a node. The replica engine is created internally; read it with
// Engine to build the platform server.
func NewFollowerNode(opts FollowerOptions) (*Node, error) {
	f, err := StartFollower(opts)
	if err != nil {
		return nil, err
	}
	n := &Node{engine: f.Engine(), role: RoleFollower, follower: f}
	n.init()
	return n, nil
}

func (n *Node) init() {
	n.engine.SetReplStatsFunc(n.Stats)
	n.engine.SetEpochGuard(n.checkEpoch)
	n.mux = http.NewServeMux()
	n.mux.HandleFunc("GET /api/repl/stream", n.handleStream)
	n.mux.HandleFunc("GET /api/repl/snapshot", n.handleSnapshot)
	n.mux.HandleFunc("GET /api/repl/status", n.handleStatus)
	n.mux.HandleFunc("POST /api/repl/promote", n.handlePromote)
	n.mux.HandleFunc("POST /api/repl/fence", n.handleFence)
	if n.leader != nil && n.leader.j != nil {
		n.epoch = n.leader.j.Epoch()
	}
}

// SetIdentity tells the node its own name and the ring partition it
// serves — the identity the election layer fences by. A leader whose
// persisted epoch token names a different holder was deposed before this
// restart: it comes back fenced, journal included, so not even the first
// write after a kill -9 can fork history.
func (n *Node) SetIdentity(name, partition string) {
	n.mu.Lock()
	n.name, n.partition = name, partition
	var fenceTok platform.EpochToken
	if n.leader != nil && !n.epoch.IsZero() && n.epoch.Holder != name {
		n.fenced = true
		fenceTok = n.epoch
	}
	leader := n.leader
	n.mu.Unlock()
	if !fenceTok.IsZero() && leader != nil && leader.j != nil {
		leader.j.Fence(fenceTok)
	}
}

// EpochToken returns the node's current fencing token.
func (n *Node) EpochToken() platform.EpochToken {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Fenced reports whether the node has been deposed.
func (n *Node) Fenced() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fenced
}

// checkEpoch is the engine's write-path fencing guard (see
// platform.Engine.CheckEpoch). A write stamped with a token newer than
// the node's own is proof of a later promotion: the write is rejected
// AND the node permanently fences itself — journal included — so a
// deposed leader that comes back accepts exactly zero writes once any
// correctly-stamped request reaches it. Stamps at or below the node's
// own token pass (the stamp is a floor, so a router with a stale view
// never causes spurious rejections); followers pass everything, their
// ErrReadOnly redirect already handles writes.
func (n *Node) checkEpoch(tok platform.EpochToken) error {
	n.mu.Lock()
	if n.fenced {
		n.mu.Unlock()
		return platform.ErrFenced
	}
	if n.role != RoleLeader || tok.IsZero() || !n.epoch.Less(tok) {
		n.mu.Unlock()
		return nil
	}
	n.epoch = tok
	n.fenced = true
	leader := n.leader
	n.mu.Unlock()
	if leader != nil && leader.j != nil {
		leader.j.Fence(tok)
	}
	return platform.ErrStaleEpoch
}

// Fence deposes the node with tok — the election layer's push-style
// counterpart of the write-stamp check, used to fence the loser of a
// dueling promotion. Safe by construction: a token at or below the
// node's own never fences (a node cannot be deposed by its own token),
// so callers may fence with the partition's max token unconditionally.
// On a follower it only lifts the epoch floor the stream is checked
// against.
func (n *Node) Fence(tok platform.EpochToken) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if f := n.follower; f != nil {
		n.mu.Unlock()
		f.observeEpoch(tok)
		return nil
	}
	if !n.epoch.Less(tok) {
		n.mu.Unlock()
		return nil
	}
	n.epoch = tok
	n.fenced = true
	leader := n.leader
	n.mu.Unlock()
	if leader != nil && leader.j != nil {
		return leader.j.Fence(tok)
	}
	return nil
}

// Engine returns the engine this node serves (the replica's on a
// follower).
func (n *Node) Engine() *platform.Engine { return n.engine }

// Handler returns the /api/repl/* surface for mounting on the platform
// server: srv.Handle("/api/repl/", node.Handler()).
func (n *Node) Handler() http.Handler { return n.mux }

// Role returns the node's current role.
func (n *Node) Role() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Follower returns the follower half while the node is one (nil after
// promotion).
func (n *Node) Follower() *Follower {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.follower
}

// Journal returns the journal this node's feed serves: the one passed to
// NewLeaderNode, or the one a durable promotion created. Nil on followers
// and on promoted nodes without a DataDir. Unlike the frontier in Stats
// (fed by the committer's tap, so it trails fast-acked appends briefly),
// Journal().Len() counts every acknowledged write immediately.
func (n *Node) Journal() *platform.Journal {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leader == nil {
		return nil
	}
	return n.leader.j
}

// Stats reports the node's replication view (the engine's stats provider).
func (n *Node) Stats() platform.ReplStats {
	n.mu.Lock()
	leader, follower, warn := n.leader, n.follower, n.warn
	partition, epoch, fenced := n.partition, n.epoch, n.fenced
	n.mu.Unlock()
	var st platform.ReplStats
	switch {
	case follower != nil:
		st = follower.stats()
	case leader != nil:
		st = leader.stats()
	default:
		// Promoted without a data dir: writable, but no feed to serve.
		st = platform.ReplStats{Role: RoleLeader, Ready: true}
	}
	if warn != "" && st.LastError == "" {
		st.LastError = warn
	}
	st.Partition = partition
	if follower == nil {
		// Leaders report the node-held token; a follower's stats already
		// carry the newest token its stream observed.
		st.Epoch, st.EpochHolder = epoch.Epoch, epoch.Holder
	}
	if fenced {
		// A deposed leader keeps its role (the probe needs to see WHAT was
		// deposed) but is not ready: it serves nothing until it rejoins.
		st.Fenced = true
		st.Ready = false
	}
	return st
}

// currentLeader returns the feed if this node is serving one, with the
// node's fencing view: a fenced (deposed) leader serves no feed at all —
// its journal may hold an unreplicated tail past the point its
// successor's history was seeded from, and letting a follower apply it
// would fork that follower off the new timeline.
func (n *Node) currentLeader() (*Leader, platform.EpochToken, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, platform.EpochToken{}, false
	}
	return n.leader, n.epoch, n.fenced
}

func (n *Node) handleStream(w http.ResponseWriter, r *http.Request) {
	l, tok, fenced := n.currentLeader()
	if fenced {
		httpError(w, http.StatusServiceUnavailable, "fenced", platform.ErrFenced.Error())
		return
	}
	if l == nil {
		httpError(w, http.StatusServiceUnavailable, "not_leader", ErrNotLeader.Error())
		return
	}
	if !tok.IsZero() {
		w.Header().Set(HeaderReplEpoch, tok.String())
	}
	l.handleStream(w, r)
}

func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	l, tok, fenced := n.currentLeader()
	if fenced {
		httpError(w, http.StatusServiceUnavailable, "fenced", platform.ErrFenced.Error())
		return
	}
	if l == nil {
		httpError(w, http.StatusServiceUnavailable, "not_leader", ErrNotLeader.Error())
		return
	}
	if !tok.IsZero() {
		w.Header().Set(HeaderReplEpoch, tok.String())
	}
	l.handleSnapshot(w, r)
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeStatsJSON(w, n.Stats())
}

// handlePromote is POST /api/repl/promote: the failover trigger on a
// follower, used by operators and by the gateway's elector. Optional
// ?epoch=N&holder=H name the exact fencing token to mint (the elector
// computes N as the partition's max observed epoch + 1); omitted, the
// node mints the next epoch after everything it has seen, with itself as
// holder.
func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req platform.EpochToken
	q := r.URL.Query()
	if s := q.Get("epoch"); s != "" {
		epoch, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "malformed epoch")
			return
		}
		req.Epoch = epoch
	}
	req.Holder = q.Get("holder")
	if err := n.PromoteEpoch(req); err != nil {
		status := http.StatusInternalServerError
		if err == ErrNotFollower || err == ErrEpochBehind {
			status = http.StatusConflict
		}
		httpError(w, status, "promote_failed", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeStatsJSON(w, n.Stats())
}

// handleFence is POST /api/repl/fence?token=E:H — the elector's "you
// lost" push: depose this node with the given token (a no-op when the
// token is at or below the node's own).
func (n *Node) handleFence(w http.ResponseWriter, r *http.Request) {
	tok, err := platform.ParseEpochToken(r.URL.Query().Get("token"))
	if err != nil || tok.IsZero() {
		httpError(w, http.StatusBadRequest, "bad_request", "malformed or missing fence token")
		return
	}
	if err := n.Fence(tok); err != nil {
		httpError(w, http.StatusInternalServerError, "fence_failed", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeStatsJSON(w, n.Stats())
}

// Promote turns a caught-up follower into a leader (see
// Follower.promote): the stream stops, the replica state is cut as a
// snapshot at the applied sequence into FollowerOptions.DataDir (when
// set) with a fresh journal seeded to continue the same numbering, and
// the engine accepts writes again. The promotion mints the next fencing
// token after everything this follower has observed, with itself as the
// holder. Idempotent failure mode: a node that is not (or no longer) a
// follower returns ErrNotFollower.
func (n *Node) Promote() error { return n.PromoteEpoch(platform.EpochToken{}) }

// PromoteEpoch is Promote with an explicit fencing token. A zero Epoch
// auto-mints (max observed + 1); an empty Holder defaults to the node's
// own name. The minted token must exceed every token this follower has
// observed on its stream — a promotion that would be instantly fenced is
// refused with ErrEpochBehind instead of minting a stillborn leader.
func (n *Node) PromoteEpoch(req platform.EpochToken) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	f := n.follower
	if f == nil || n.promoting {
		// Already a leader, or a racing Promote holds the transition: two
		// promotions against one DataDir would double-seed the store.
		n.mu.Unlock()
		return ErrNotFollower
	}
	name := n.name
	n.promoting = true
	n.mu.Unlock()
	seen := f.epochSeen()
	mint := req
	if mint.Epoch == 0 {
		mint.Epoch = seen.Epoch + 1
	}
	if mint.Holder == "" {
		mint.Holder = name
	}
	var p promoted
	err := func() error {
		if !seen.Less(mint) {
			return fmt.Errorf("%w: minting %s, but this follower has observed %s", ErrEpochBehind, mint, seen)
		}
		var err error
		p, err = f.promote(mint)
		return err
	}()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.promoting = false
	if err != nil {
		// The follower's stream is stopped either way (promote's first
		// act); the node stays a follower for stats purposes, and the
		// operator retries or restarts.
		return err
	}
	n.role = RoleLeader
	n.follower = nil
	n.leader = p.leader
	n.epoch = mint
	n.fenced = false
	n.ownedJournal = p.j
	n.ownedCP = p.cp
	n.ownedDB = p.db
	if p.warn != nil {
		n.warn = p.warn.Error()
	}
	return nil
}

// Close stops the node: the follower loop (if any) halts, the feed tap
// detaches, and any store/journal acquired by promotion is flushed and
// closed. Safe to call once the HTTP server has stopped routing to it.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	leader, follower := n.leader, n.follower
	j, cp, db := n.ownedJournal, n.ownedCP, n.ownedDB
	n.mu.Unlock()
	if follower != nil {
		follower.Close()
	}
	if leader != nil {
		leader.Close()
	}
	// Same order as server shutdown: drain the journal's committer, stop
	// the checkpointer (a cut in progress finishes), close the store.
	var err error
	if j != nil {
		err = j.Close()
	}
	if cp != nil {
		cp.Close()
	}
	if db != nil {
		if cerr := db.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
