package repl

import (
	"encoding/json"
	"net/http"
	"sync"

	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// writeStatsJSON writes a ReplStats body (Content-Type already set).
func writeStatsJSON(w http.ResponseWriter, st platform.ReplStats) {
	json.NewEncoder(w).Encode(st)
}

// Node is one replication participant: a leader serving the journal feed,
// or a follower pumping it — and, after Promote, both in succession. It
// owns the /api/repl/* HTTP surface (mounted on the platform server with
// Server.Handle) and provides the ReplStats the platform's /api/stats and
// /api/healthz report:
//
//	GET  /api/repl/stream?from=N   → committed events, long-poll (leader)
//	GET  /api/repl/snapshot        → latest snapshot record (leader)
//	GET  /api/repl/status          → this node's ReplStats
//	POST /api/repl/promote         → follower → leader transition
type Node struct {
	engine *platform.Engine
	mux    *http.ServeMux

	mu        sync.Mutex
	role      string
	leader    *Leader   // non-nil while serving the feed
	follower  *Follower // non-nil while following
	promoting bool      // a Promote is in flight; serializes racing requests
	warn      string    // non-fatal degradation (promotion checkpointer failure)
	closed    bool

	// Resources acquired by a durable promotion, closed by Close.
	ownedJournal *platform.Journal
	ownedCP      *platform.Checkpointer
	ownedDB      *storage.DB
}

// NewLeaderNode wires a journaled engine as a replication leader. The
// engine, journal and db stay owned by the caller (the server already
// manages their shutdown); Close only detaches the feed's tap.
func NewLeaderNode(engine *platform.Engine, j *platform.Journal, db *storage.DB) *Node {
	return NewLeaderNodeClock(engine, j, db, nil)
}

// NewLeaderNodeClock is NewLeaderNode with an injected clock pacing the
// feed's long-poll deadlines (nil = wall). The simulation harness passes
// its vclock.Sim here; production and existing tests keep wall pacing —
// deliberately NOT the engine's clock, since engines commonly run on an
// auto-advancing Virtual clock that would make every long poll expire
// instantly.
func NewLeaderNodeClock(engine *platform.Engine, j *platform.Journal, db *storage.DB, clock vclock.Clock) *Node {
	n := &Node{engine: engine, role: RoleLeader, leader: NewLeaderClock(j, db, clock)}
	n.init()
	return n
}

// NewFollowerNode bootstraps a follower (see StartFollower) and wires it
// as a node. The replica engine is created internally; read it with
// Engine to build the platform server.
func NewFollowerNode(opts FollowerOptions) (*Node, error) {
	f, err := StartFollower(opts)
	if err != nil {
		return nil, err
	}
	n := &Node{engine: f.Engine(), role: RoleFollower, follower: f}
	n.init()
	return n, nil
}

func (n *Node) init() {
	n.engine.SetReplStatsFunc(n.Stats)
	n.mux = http.NewServeMux()
	n.mux.HandleFunc("GET /api/repl/stream", n.handleStream)
	n.mux.HandleFunc("GET /api/repl/snapshot", n.handleSnapshot)
	n.mux.HandleFunc("GET /api/repl/status", n.handleStatus)
	n.mux.HandleFunc("POST /api/repl/promote", n.handlePromote)
}

// Engine returns the engine this node serves (the replica's on a
// follower).
func (n *Node) Engine() *platform.Engine { return n.engine }

// Handler returns the /api/repl/* surface for mounting on the platform
// server: srv.Handle("/api/repl/", node.Handler()).
func (n *Node) Handler() http.Handler { return n.mux }

// Role returns the node's current role.
func (n *Node) Role() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Follower returns the follower half while the node is one (nil after
// promotion).
func (n *Node) Follower() *Follower {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.follower
}

// Journal returns the journal this node's feed serves: the one passed to
// NewLeaderNode, or the one a durable promotion created. Nil on followers
// and on promoted nodes without a DataDir. Unlike the frontier in Stats
// (fed by the committer's tap, so it trails fast-acked appends briefly),
// Journal().Len() counts every acknowledged write immediately.
func (n *Node) Journal() *platform.Journal {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leader == nil {
		return nil
	}
	return n.leader.j
}

// Stats reports the node's replication view (the engine's stats provider).
func (n *Node) Stats() platform.ReplStats {
	n.mu.Lock()
	leader, follower, warn := n.leader, n.follower, n.warn
	n.mu.Unlock()
	var st platform.ReplStats
	switch {
	case follower != nil:
		st = follower.stats()
	case leader != nil:
		st = leader.stats()
	default:
		// Promoted without a data dir: writable, but no feed to serve.
		st = platform.ReplStats{Role: RoleLeader, Ready: true}
	}
	if warn != "" && st.LastError == "" {
		st.LastError = warn
	}
	return st
}

// currentLeader returns the feed if this node is serving one.
func (n *Node) currentLeader() *Leader {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	return n.leader
}

func (n *Node) handleStream(w http.ResponseWriter, r *http.Request) {
	l := n.currentLeader()
	if l == nil {
		httpError(w, http.StatusServiceUnavailable, "not_leader", ErrNotLeader.Error())
		return
	}
	l.handleStream(w, r)
}

func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	l := n.currentLeader()
	if l == nil {
		httpError(w, http.StatusServiceUnavailable, "not_leader", ErrNotLeader.Error())
		return
	}
	l.handleSnapshot(w, r)
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeStatsJSON(w, n.Stats())
}

// handlePromote is POST /api/repl/promote: the operator's failover
// trigger on a follower.
func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	if err := n.Promote(); err != nil {
		status := http.StatusInternalServerError
		if err == ErrNotFollower {
			status = http.StatusConflict
		}
		httpError(w, status, "promote_failed", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeStatsJSON(w, n.Stats())
}

// Promote turns a caught-up follower into a leader (see
// Follower.promote): the stream stops, the replica state is cut as a
// snapshot at the applied sequence into FollowerOptions.DataDir (when
// set) with a fresh journal seeded to continue the same numbering, and
// the engine accepts writes again. Idempotent failure mode: a node that
// is not (or no longer) a follower returns ErrNotFollower.
func (n *Node) Promote() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	f := n.follower
	if f == nil || n.promoting {
		// Already a leader, or a racing Promote holds the transition: two
		// promotions against one DataDir would double-seed the store.
		n.mu.Unlock()
		return ErrNotFollower
	}
	n.promoting = true
	n.mu.Unlock()
	p, err := f.promote()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.promoting = false
	if err != nil {
		// The follower's stream is stopped either way (promote's first
		// act); the node stays a follower for stats purposes, and the
		// operator retries or restarts.
		return err
	}
	n.role = RoleLeader
	n.follower = nil
	n.leader = p.leader
	n.ownedJournal = p.j
	n.ownedCP = p.cp
	n.ownedDB = p.db
	if p.warn != nil {
		n.warn = p.warn.Error()
	}
	return nil
}

// Close stops the node: the follower loop (if any) halts, the feed tap
// detaches, and any store/journal acquired by promotion is flushed and
// closed. Safe to call once the HTTP server has stopped routing to it.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	leader, follower := n.leader, n.follower
	j, cp, db := n.ownedJournal, n.ownedCP, n.ownedDB
	n.mu.Unlock()
	if follower != nil {
		follower.Close()
	}
	if leader != nil {
		leader.Close()
	}
	// Same order as server shutdown: drain the journal's committer, stop
	// the checkpointer (a cut in progress finishes), close the store.
	var err error
	if j != nil {
		err = j.Close()
	}
	if cp != nil {
		cp.Close()
	}
	if db != nil {
		if cerr := db.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
