package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/platform"
)

// PromoteFollower asks the node at baseURL to promote itself with tok
// (zero fields auto-fill; see Node.PromoteEpoch) — the elector's
// promotion RPC. The returned stats are the node's post-promotion view,
// so the caller can confirm the role flip and the minted token without a
// second probe.
func PromoteFollower(hc *http.Client, baseURL string, tok platform.EpochToken) (platform.ReplStats, error) {
	q := url.Values{}
	if tok.Epoch > 0 {
		q.Set("epoch", strconv.FormatUint(tok.Epoch, 10))
	}
	if tok.Holder != "" {
		q.Set("holder", tok.Holder)
	}
	return replPost(hc, baseURL, "/api/repl/promote", q)
}

// FenceNode tells the node at baseURL it was deposed by tok — the
// elector's push-style fence, used against the loser of a dueling
// promotion and against stale leaders that resurface after a failover.
// Safe to call with the partition's max token unconditionally: a node is
// never fenced by its own (or an older) token.
func FenceNode(hc *http.Client, baseURL string, tok platform.EpochToken) (platform.ReplStats, error) {
	q := url.Values{}
	q.Set("token", tok.String())
	return replPost(hc, baseURL, "/api/repl/fence", q)
}

func replPost(hc *http.Client, baseURL, path string, q url.Values) (platform.ReplStats, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	u := strings.TrimRight(baseURL, "/") + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := hc.Post(u, "application/json", nil)
	if err != nil {
		return platform.ReplStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var body struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body) == nil && body.Error != "" {
			return platform.ReplStats{}, fmt.Errorf("repl: %s %s: HTTP %d: %s", path, baseURL, resp.StatusCode, body.Error)
		}
		return platform.ReplStats{}, fmt.Errorf("repl: %s %s: HTTP %d", path, baseURL, resp.StatusCode)
	}
	var st platform.ReplStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return platform.ReplStats{}, fmt.Errorf("repl: %s %s: decode: %w", path, baseURL, err)
	}
	return st, nil
}
