package repl

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// postWrite PUTs a project create against url, optionally stamped with an
// epoch token, and returns the HTTP status and error code (if any).
func postWrite(t *testing.T, url, name string, tok platform.EpochToken) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url+"/api/projects",
		jsonBody(t, map[string]any{"name": name, "redundancy": 1}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if !tok.IsZero() {
		req.Header.Set(platform.HeaderEpoch, tok.String())
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, ""
	}
	var e struct {
		Code string `json:"code"`
	}
	json.Unmarshal(body, &e)
	return resp.StatusCode, e.Code
}

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return &sliceReader{data: data}
}

type sliceReader struct{ data []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestDeposedLeaderWriteRejected is the fencing tentpole edge end to end:
// a write stamped with a newer epoch token is proof the leader was
// deposed — the write is rejected 409 stale_epoch, the leader permanently
// self-fences (journal included), and every subsequent write, stamped or
// not, bounces 503 fenced.
func TestDeposedLeaderWriteRejected(t *testing.T) {
	env := newLeaderEnv(t, 0)
	env.node.SetIdentity("l1", "p1")
	buildHistory(t, env.engine, "pre", 10)

	// A stamp at the leader's own (zero) token is a floor, not a depose:
	// the write passes.
	if code, ec := postWrite(t, env.hs.URL, "floor", platform.EpochToken{}); code != http.StatusOK {
		t.Fatalf("unstamped write: HTTP %d %s", code, ec)
	}

	// A newer stamp deposes.
	newer := platform.EpochToken{Epoch: 3, Holder: "f9"}
	if code, ec := postWrite(t, env.hs.URL, "stale", newer); code != http.StatusConflict || ec != "stale_epoch" {
		t.Fatalf("newer-stamped write: HTTP %d code %q, want 409 stale_epoch", code, ec)
	}
	if !env.node.Fenced() {
		t.Fatal("leader did not self-fence on newer stamp")
	}
	if !env.journal.Fenced() {
		t.Fatal("journal not fenced with the node")
	}

	// Not a single write lands after the depose — not even unstamped ones.
	if code, ec := postWrite(t, env.hs.URL, "after", platform.EpochToken{}); code != http.StatusServiceUnavailable || ec != "fenced" {
		t.Fatalf("write to fenced leader: HTTP %d code %q, want 503 fenced", code, ec)
	}
	// The journal rejects direct appends too (kill -9 of the HTTP layer
	// can't resurrect the write path).
	if _, err := env.journal.Enqueue(platform.Event{}); !errors.Is(err, platform.ErrFenced) {
		t.Fatalf("journal append on fenced leader: %v, want ErrFenced", err)
	}
	// And the fenced leader serves no replication feed: its unreplicated
	// tail must not fork a follower off the successor's timeline.
	resp, err := http.Get(env.hs.URL + "/api/repl/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced leader stream: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestDuelingPromotionsResolveToOneEpoch promotes two followers of the
// same dead leader concurrently: both mint the same epoch number, the
// holder name breaks the tie totally, and fencing the loser with the
// winner's token (what the election layer does) leaves exactly one
// unfenced leader. Fencing the winner with the loser's token is a no-op —
// a node cannot be deposed by a token at or below its own.
func TestDuelingPromotionsResolveToOneEpoch(t *testing.T) {
	env := newLeaderEnv(t, 0)
	_, events := buildHistory(t, env.engine, "duel", 50)
	waitLen(t, env.journal, events)

	mkFollower := func(name string) *Node {
		node, err := NewFollowerNode(FollowerOptions{
			LeaderURL: env.hs.URL,
			Clock:     vclock.NewVirtual(),
			PollWait:  250 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("follower %s: %v", name, err)
		}
		t.Cleanup(func() { node.Close() })
		node.SetIdentity(name, "p1")
		if err := node.Follower().WaitFor(events, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		return node
	}
	f1, f2 := mkFollower("f1"), mkFollower("f2")

	// The leader dies; both operators race a promotion.
	env.hs.Close()
	if err := f1.Promote(); err != nil {
		t.Fatalf("promote f1: %v", err)
	}
	if err := f2.Promote(); err != nil {
		t.Fatalf("promote f2: %v", err)
	}
	t1, t2 := f1.EpochToken(), f2.EpochToken()
	if t1.Epoch != t2.Epoch {
		t.Fatalf("dueling mints diverged in epoch number: %s vs %s", t1, t2)
	}
	if !t1.Less(t2) {
		t.Fatalf("token order must break the duel: %s !< %s", t1, t2)
	}

	// The election layer fences with the partition max unconditionally —
	// the winner shrugs its own token off, the loser is deposed.
	if err := f2.Fence(t2); err != nil {
		t.Fatalf("fence winner with own token: %v", err)
	}
	if f2.Fenced() {
		t.Fatal("winner fenced by its own token")
	}
	if err := f1.Fence(t2); err != nil {
		t.Fatalf("fence loser: %v", err)
	}
	if !f1.Fenced() {
		t.Fatal("loser not fenced by the winner's token")
	}
	// Exactly one epoch holder remains writable.
	if _, err := f2.Engine().EnsureProject(platform.ProjectSpec{Name: "post-duel", Redundancy: 1}); err != nil {
		t.Fatalf("write on winner: %v", err)
	}
}

// TestPromotionRefusedBehindObservedEpoch: a follower that has observed a
// fencing token refuses to mint at or below it — a promotion that loses
// the race by epoch is stillborn, not a second leader.
func TestPromotionRefusedBehindObservedEpoch(t *testing.T) {
	env := newLeaderEnv(t, 0)
	_, events := buildHistory(t, env.engine, "behind", 20)
	waitLen(t, env.journal, events)

	node, err := NewFollowerNode(FollowerOptions{
		LeaderURL: env.hs.URL,
		Clock:     vclock.NewVirtual(),
		PollWait:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.SetIdentity("f1", "p1")
	if err := node.Follower().WaitFor(events, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// The election layer tells this follower epoch 5 exists elsewhere.
	node.Fence(platform.EpochToken{Epoch: 5, Holder: "f9"})
	if err := node.PromoteEpoch(platform.EpochToken{Epoch: 4, Holder: "f1"}); !errors.Is(err, ErrEpochBehind) {
		t.Fatalf("stale mint: %v, want ErrEpochBehind", err)
	}
	if node.Role() != RoleFollower {
		t.Fatalf("refused promotion changed role to %s", node.Role())
	}
	// Minting above the observed epoch succeeds.
	if err := node.PromoteEpoch(platform.EpochToken{Epoch: 6, Holder: "f1"}); err != nil {
		t.Fatalf("mint above observed: %v", err)
	}
	if tok := node.EpochToken(); tok.Epoch != 6 || tok.Holder != "f1" {
		t.Fatalf("minted token = %s, want 6:f1", tok)
	}
}

// TestEpochSurvivesRestart: a durable promotion persists its fencing
// token in the journal's meta row; reopening the store after a kill -9
// recovers it, and identity attach detects deposed-while-dead.
func TestEpochSurvivesRestart(t *testing.T) {
	env := newLeaderEnv(t, 200)
	_, events := buildHistory(t, env.engine, "durable", 100)
	waitLen(t, env.journal, events)
	if err := env.cp.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	promoDir := filepath.Join(t.TempDir(), "promoted")
	node, err := NewFollowerNode(FollowerOptions{
		LeaderURL: env.hs.URL,
		Clock:     vclock.NewVirtual(),
		PollWait:  250 * time.Millisecond,
		DataDir:   promoDir,
		Storage:   storage.Options{Sync: storage.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	node.SetIdentity("f1", "p1")
	if err := node.Follower().WaitFor(events, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := node.PromoteEpoch(platform.EpochToken{Epoch: 7, Holder: "f1"}); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := node.Close(); err != nil {
		t.Fatalf("close promoted node: %v", err)
	}

	// Restart: the token is recovered from disk before a single write.
	db, err := storage.Open(promoDir, storage.Options{Sync: storage.SyncNever, BreakStaleLock: true})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer db.Close()
	j, err := platform.OpenJournal(db)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j.Close()
	if tok := j.Epoch(); tok.Epoch != 7 || tok.Holder != "f1" {
		t.Fatalf("recovered epoch = %s, want 7:f1", tok)
	}
	engine, err := platform.NewEngineOpts(platform.EngineOptions{Clock: vclock.NewVirtual(), Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	restarted := NewLeaderNode(engine, j, db)
	defer restarted.Close()

	// Same holder: comes back an unfenced leader at its own epoch.
	restarted.SetIdentity("f1", "p1")
	if restarted.Fenced() {
		t.Fatal("rightful holder fenced on restart")
	}
	if tok := restarted.EpochToken(); tok.Epoch != 7 {
		t.Fatalf("restarted token = %s, want epoch 7", tok)
	}

	// A different node restarting over a journal whose persisted holder is
	// someone else was deposed while dead: it must come back fenced.
	env2 := newLeaderEnv(t, 0)
	if err := env2.journal.Fence(platform.EpochToken{Epoch: 2, Holder: "elsewhere"}); err != nil {
		t.Fatal(err)
	}
	deposed := NewLeaderNode(env2.engine, env2.journal, env2.db)
	defer deposed.Close()
	deposed.SetIdentity("l1", "p1")
	if !deposed.Fenced() {
		t.Fatal("deposed-while-dead leader restarted unfenced")
	}
}
