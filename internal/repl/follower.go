package repl

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// FollowerOptions configure StartFollower. Only LeaderURL is required.
type FollowerOptions struct {
	// LeaderURL is the leader's base URL (e.g. "http://leader:7070").
	LeaderURL string
	// Clock supplies the replica engine's clock; nil defaults to the
	// engine's own default (a deterministic virtual clock). Replicated
	// events carry their own timestamps, so this clock only matters
	// after a promotion.
	Clock vclock.Clock
	// LoopClock paces the stream pump itself: reconnect backoff, lag
	// tracking, and WaitFor's polling. Nil defaults to wall time. It is
	// deliberately distinct from Clock — an engine may run on a Virtual
	// clock (auto-advancing timestamps) while the pump waits in real
	// time; a simulated cluster injects its vclock.Sim as both.
	LoopClock vclock.Clock
	// Rand jitters each reconnect backoff by ±25% so followers of a
	// bounced leader do not reconnect in lockstep. Nil disables jitter;
	// inject a vclock.SeededRand for a reconnect schedule reproducible
	// from a seed.
	Rand vclock.Rand
	// LeaseTTL / Shards configure the replica engine's scheduler,
	// exactly as EngineOptions would.
	LeaseTTL time.Duration
	Shards   int
	// HTTP is the client used against the leader; nil builds one. Its
	// Timeout is ignored for the stream (which long-polls); per-request
	// deadlines are derived from PollWait instead.
	HTTP *http.Client
	// PollWait is the long-poll window asked of the leader (default 10s,
	// capped by the leader at 30s).
	PollWait time.Duration
	// MaxBatch caps events per poll response (default 4096).
	MaxBatch int
	// ReconnectBackoff is the delay after a failed poll, doubling up to
	// 5s (default 100ms). The follower retries forever — a leader
	// restart is routine, not fatal.
	ReconnectBackoff time.Duration
	// DataDir, when set, is where Promote materializes the follower's
	// state and opens its own journal. Empty means an ephemeral
	// promotion: writable, but unjournaled until restarted with -data.
	DataDir string
	// Storage / Journal configure the promotion store and journal.
	Storage storage.Options
	Journal platform.JournalOptions
	// Checkpoint configures the snapshot checkpointer a durable
	// promotion attaches (the promoted leader must keep folding its
	// journal, or post-failover history grows unbounded and gen-2
	// followers lose their bounded catch-up). Both triggers zero skips
	// the checkpointer, exactly like the server's -snapshot-every 0
	// -snapshot-bytes 0.
	Checkpoint platform.CheckpointOptions
	// OwnsID, when non-nil, is the replica engine's id-allocation filter
	// (see platform.EngineOptions.OwnsID). Inert while following —
	// replicated events keep their recorded ids — it takes effect after a
	// promotion, keeping the promoted leader's new ids inside the ring
	// partition it owns.
	OwnsID func(id int64) bool
	// Metrics, when non-nil, registers the follower's families (lag in
	// events and seconds, bootstrap durations, rebootstrap counter) and
	// flows into the replica engine and any promotion store/journal. Nil
	// disables instrumentation.
	Metrics *obs.Registry
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.PollWait <= 0 {
		o.PollWait = 10 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = defaultStreamMax
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 100 * time.Millisecond
	}
	if o.LoopClock == nil {
		o.LoopClock = vclock.NewWall()
	}
	return o
}

// maxReconnectBackoff caps the follower's retry delay.
const maxReconnectBackoff = 5 * time.Second

// Follower is a read replica: an engine bootstrapped from the leader's
// snapshot + journal tail, kept current by applying the live stream
// through the replay path, and read-only toward external callers (the
// HTTP layer redirects writes to the leader). A follower that dies is
// simply restarted — bootstrap is bounded by the leader's checkpoint
// interval, so rejoin is cheap by construction.
type Follower struct {
	opts   FollowerOptions
	engine *platform.Engine
	hc     *http.Client
	base   string
	clock  vclock.Clock // opts.LoopClock: pump pacing, never timestamps

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// traceID tags every stream/snapshot request this follower sends, so
	// the leader's access log attributes the replication tail to one
	// session — the last hop of a request's cross-node path.
	traceID string

	mu           sync.Mutex
	appliedSeq   uint64    // next sequence to apply
	leaderSeq    uint64    // leader frontier as of the last successful poll
	snapshotSeq  uint64    // bootstrap snapshot's cut point
	rebootstraps uint64    // state resets forced by leader-side truncation
	target       uint64    // frontier at first contact; ready once applied past it
	lagSince     time.Time // when the replica last fell behind the frontier (zero = caught up)
	epoch        platform.EpochToken
	connected    bool
	ready        bool
	fatal        bool
	lastErr      string
	stopped      bool

	mBootstrap *obs.Histogram // bootstrap/rebootstrap wall time (nil = off)
}

// StartFollower bootstraps a replica from the leader (snapshot + tail,
// the same bounded recovery path a restart uses) and starts the stream
// loop. The returned follower's Engine serves the read API; writes
// against it return platform.ErrReadOnly carrying the leader's URL.
func StartFollower(opts FollowerOptions) (*Follower, error) {
	opts = opts.withDefaults()
	if opts.LeaderURL == "" {
		return nil, fmt.Errorf("repl: follower requires a leader URL")
	}
	// The registry flows into everything the follower builds: the replica
	// engine now, the promotion store/journal later.
	opts.Storage.Metrics = opts.Metrics
	opts.Journal.Metrics = opts.Metrics
	engine, err := platform.NewEngineOpts(platform.EngineOptions{
		Clock:    opts.Clock,
		LeaseTTL: opts.LeaseTTL,
		Shards:   opts.Shards,
		OwnsID:   opts.OwnsID,
		Metrics:  opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	hc := opts.HTTP
	if hc == nil {
		hc = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		opts:    opts,
		engine:  engine,
		hc:      hc,
		clock:   opts.LoopClock,
		base:    strings.TrimRight(opts.LeaderURL, "/"),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		traceID: obs.NewTraceID(),
	}
	f.initMetrics(opts.Metrics)
	if err := f.bootstrap(); err != nil {
		cancel()
		return nil, err
	}
	engine.SetReadOnly(opts.LeaderURL)
	// Direct StartFollower embedders get follower stats on the engine's
	// stats/healthz; a wrapping Node re-registers its own role-aware
	// provider (which tracks the follower→leader transition) on top.
	engine.SetReplStatsFunc(f.stats)
	go f.loop()
	return f, nil
}

// Engine exposes the replica's engine (for serving the read API).
func (f *Follower) Engine() *platform.Engine { return f.engine }

// initMetrics registers the follower's families (nil registry = off). Lag
// is exported both ways the ISSUE's ROADMAP consumers need it: events
// (how much) and seconds (how stale), the latter measured as time since
// the replica last matched the leader's frontier.
func (f *Follower) initMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	f.mBootstrap = reg.Histogram("reprowd_repl_bootstrap_seconds",
		"Wall time of one bootstrap or rebootstrap (snapshot fetch + restore).", nil)
	reg.CounterFunc("reprowd_repl_rebootstraps_total",
		"State resets forced by leader-side journal truncation.", func() uint64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.rebootstraps
		})
	reg.GaugeFunc("reprowd_repl_lag_events",
		"Committed leader events not yet applied on this replica.", func() float64 {
			return float64(f.stats().Lag)
		})
	reg.GaugeFunc("reprowd_repl_lag_seconds",
		"How long this replica has been behind the leader frontier (0 = caught up).", func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			if f.lagSince.IsZero() {
				return 0
			}
			return f.clock.Now().Sub(f.lagSince).Seconds()
		})
	reg.GaugeFunc("reprowd_repl_applied_seq",
		"Next journal sequence this replica will apply.", func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(f.appliedSeq)
		})
	reg.GaugeFunc("reprowd_repl_leader_seq",
		"Leader frontier as of the last successful poll.", func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(f.leaderSeq)
		})
}

// epochSeen returns the newest fencing token this follower has observed
// on the replication wire — the floor any promotion of it must exceed.
func (f *Follower) epochSeen() platform.EpochToken {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// observeEpoch lifts the follower's epoch floor (elector fence calls and
// response stamps both land here). Tokens at or below the current floor
// are no-ops.
func (f *Follower) observeEpoch(tok platform.EpochToken) {
	f.mu.Lock()
	if f.epoch.Less(tok) {
		f.epoch = tok
	}
	f.mu.Unlock()
}

// checkWireEpoch validates a stream/snapshot response's epoch stamp
// against the floor: an older token means the response came from a
// deposed leader whose history may have forked — refuse it. Newer or
// equal stamps lift/keep the floor.
func (f *Follower) checkWireEpoch(hdr string) error {
	tok, err := platform.ParseEpochToken(hdr)
	if err != nil {
		return err
	}
	if tok.IsZero() {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if tok.Less(f.epoch) {
		return fmt.Errorf("repl: stream epoch %s older than observed %s: %w", tok, f.epoch, platform.ErrStaleEpoch)
	}
	if f.epoch.Less(tok) {
		f.epoch = tok
	}
	return nil
}

// updateLagLocked maintains the lag clock: stamp the moment the replica
// falls behind the frontier, clear it when caught up. Callers hold f.mu.
func (f *Follower) updateLagLocked() {
	if f.leaderSeq > f.appliedSeq {
		if f.lagSince.IsZero() {
			f.lagSince = f.clock.Now()
		}
	} else {
		f.lagSince = time.Time{}
	}
}

// fetchSnapshot reads the leader's latest snapshot record. ok is false
// when the leader has never checkpointed (bootstrap then streams from
// sequence zero).
func (f *Follower) fetchSnapshot() (data []byte, seq uint64, ok bool, err error) {
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, f.base+"/api/repl/snapshot", nil)
	if err != nil {
		return nil, 0, false, err
	}
	req.Header.Set(obs.HeaderTrace, f.traceID)
	req.Header.Set("Accept", platform.FrameContentType)
	resp, err := f.hc.Do(req)
	if err != nil {
		return nil, 0, false, fmt.Errorf("repl: fetch snapshot: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, 0, false, nil
	case http.StatusOK:
	default:
		return nil, 0, false, fmt.Errorf("repl: fetch snapshot: HTTP %d", resp.StatusCode)
	}
	if err := f.checkWireEpoch(resp.Header.Get(HeaderReplEpoch)); err != nil {
		return nil, 0, false, err
	}
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, false, fmt.Errorf("repl: read snapshot: %w", err)
	}
	if resp.Header.Get("Content-Type") == platform.FrameContentType {
		// Negotiated binary wire: the snapshot arrives CRC-framed, so a
		// torn or corrupted transfer fails here instead of producing a
		// replica restored from garbage.
		data, err = platform.DecodeSnapshotFrame(data)
		if err != nil {
			return nil, 0, false, fmt.Errorf("repl: snapshot frame: %w", err)
		}
	}
	if hdr := resp.Header.Get(HeaderSnapshotSeq); hdr != "" {
		seq, _ = strconv.ParseUint(hdr, 10, 64)
	}
	return data, seq, true, nil
}

// bootstrap fetches the leader's latest snapshot (if any) and loads it
// into the fresh engine. The journal tail between the snapshot's cut and
// the leader's frontier arrives through the ordinary stream path — the
// first polls of the loop — which is what makes a bootstrap racing a
// leader-side checkpoint safe: whatever cut the snapshot read captured,
// the stream resumes exactly at its sequence (and if a cut outruns the
// stream, rebootstrap below recovers).
func (f *Follower) bootstrap() error {
	t := f.mBootstrap.Start()
	defer f.mBootstrap.Stop(t)
	data, hseq, ok, err := f.fetchSnapshot()
	if err != nil {
		return err
	}
	if !ok {
		return nil // leader has never checkpointed; stream from zero
	}
	seq, err := f.engine.RestoreState(data)
	if err != nil {
		return err
	}
	if hseq != 0 && hseq != seq {
		return fmt.Errorf("repl: snapshot cut mismatch: header %d, state %d", hseq, seq)
	}
	f.mu.Lock()
	f.appliedSeq = seq
	f.snapshotSeq = seq
	f.mu.Unlock()
	return nil
}

// rebootstrap discards the replica's state and reloads the leader's
// newest snapshot — the recovery from snapshot_required, where a
// leader-side checkpoint truncated journal events this replica had not
// yet streamed. The missing events live on inside that newer snapshot,
// so reloading it (and resuming the stream at its cut) converges on
// exactly the state contiguous streaming would have produced.
func (f *Follower) rebootstrap() error {
	t := f.mBootstrap.Start()
	defer f.mBootstrap.Stop(t)
	data, _, ok, err := f.fetchSnapshot()
	if err != nil {
		return err
	}
	if !ok {
		// The stream said "truncated" but no snapshot exists: the journal
		// invariant (truncation only ever follows a durable snapshot)
		// says this cannot happen — treat it as a transient read race.
		return fmt.Errorf("repl: leader truncated the journal but serves no snapshot")
	}
	seq, err := f.engine.ResetReplicaState(data)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.appliedSeq = seq
	f.snapshotSeq = seq
	f.rebootstraps++
	f.mu.Unlock()
	return nil
}

// loop is the stream pump: poll, apply, repeat; back off on failure and
// reconnect — a leader restart costs a few retries, nothing else.
func (f *Follower) loop() {
	defer close(f.done)
	backoff := f.opts.ReconnectBackoff
	for {
		select {
		case <-f.ctx.Done():
			return
		default:
		}
		n, err := f.poll()
		if err != nil {
			if f.ctx.Err() != nil {
				return
			}
			if err == ErrSnapshotRequired {
				// The gap we need was truncated into a newer snapshot;
				// reload it in place and resume the stream at its cut.
				err = f.rebootstrap()
				if err == nil {
					backoff = f.opts.ReconnectBackoff
					continue
				}
			}
			f.setDisconnected(err)
			select {
			case <-f.ctx.Done():
				return
			case <-f.clock.After(vclock.Jitter(f.opts.Rand, backoff, 0.25)):
			}
			backoff = min(backoff*2, maxReconnectBackoff)
			continue
		}
		backoff = f.opts.ReconnectBackoff
		_ = n
	}
}

// poll performs one long-poll round: request events at the applied
// sequence, apply each in order, record the leader's frontier. Events are
// applied as they decode, so a connection dropped mid-body just resumes
// at the next unapplied sequence.
func (f *Follower) poll() (int, error) {
	f.mu.Lock()
	from := f.appliedSeq
	f.mu.Unlock()
	u := fmt.Sprintf("%s/api/repl/stream?from=%d&wait=%s&max=%d",
		f.base, from, url.QueryEscape(f.opts.PollWait.String()), f.opts.MaxBatch)
	ctx, cancel := context.WithTimeout(f.ctx, f.opts.PollWait+15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set(obs.HeaderTrace, f.traceID)
	req.Header.Set("Accept", platform.FrameContentType)
	resp, err := f.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return 0, ErrSnapshotRequired
	default:
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("repl: stream: HTTP %d", resp.StatusCode)
	}
	if err := f.checkWireEpoch(resp.Header.Get(HeaderReplEpoch)); err != nil {
		io.Copy(io.Discard, resp.Body)
		return 0, err
	}
	var frontier uint64
	if hdr := resp.Header.Get(HeaderFrontier); hdr != "" {
		frontier, _ = strconv.ParseUint(hdr, 10, 64)
	}
	// Mark the reconnect as soon as the leader answers — the body may be
	// a long poll that stays open for the whole wait window, and healthz
	// should not report a healthy stream as down that long.
	f.recordProgress(frontier, 0)
	applied := 0
	// applyOne is the per-event step shared by both wire decoders: enforce
	// contiguity, apply through the replay path, advance the cursor.
	applyOne := func(seq uint64, ev platform.Event) error {
		f.mu.Lock()
		want := f.appliedSeq
		f.mu.Unlock()
		if seq != want {
			f.recordProgress(frontier, applied)
			return fmt.Errorf("repl: stream gap: got seq %d, want %d", seq, want)
		}
		if err := f.engine.ApplyReplicated(ev); err != nil {
			// An apply failure means replica state has diverged from the
			// leader's history — nothing a retry can fix.
			f.fail(fmt.Errorf("repl: apply seq %d: %w", seq, err))
			return err
		}
		f.mu.Lock()
		f.appliedSeq = seq + 1
		if !f.ready && f.appliedSeq >= f.target {
			// Readiness flips as soon as the first-contact frontier is
			// covered — mid-body, not at the end of the long poll.
			f.ready = true
		}
		f.updateLagLocked()
		f.mu.Unlock()
		applied++
		return nil
	}
	if resp.Header.Get("Content-Type") == platform.FrameContentType {
		// Negotiated binary wire: CRC-framed events, decoded into one
		// scratch buffer reused across the whole body.
		br := bufio.NewReaderSize(resp.Body, 64<<10)
		var scratch []byte
		for {
			seq, ev, err := platform.ReadStreamFrame(br, &scratch)
			if err == io.EOF {
				break
			}
			if err != nil {
				// Torn response: what applied, applied; resume from there.
				f.recordProgress(frontier, applied)
				return applied, fmt.Errorf("repl: stream decode: %w", err)
			}
			if err := applyOne(seq, ev); err != nil {
				return applied, err
			}
		}
	} else {
		// Legacy JSONL stream from an older leader.
		dec := json.NewDecoder(resp.Body)
		for dec.More() {
			var se StreamEvent
			if err := dec.Decode(&se); err != nil {
				f.recordProgress(frontier, applied)
				return applied, fmt.Errorf("repl: stream decode: %w", err)
			}
			if err := applyOne(se.Seq, se.Event); err != nil {
				return applied, err
			}
		}
	}
	f.recordProgress(frontier, applied)
	return applied, nil
}

// recordProgress updates the follower's view after a poll: connected,
// leader frontier, and (once the applied position has crossed the
// frontier observed at first contact) readiness.
func (f *Follower) recordProgress(frontier uint64, _ int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.connected = true
	f.lastErr = ""
	if frontier > f.leaderSeq {
		f.leaderSeq = frontier
	}
	if f.target == 0 {
		f.target = frontier
	}
	if !f.ready && f.appliedSeq >= f.target {
		f.ready = true
	}
	f.updateLagLocked()
}

func (f *Follower) setDisconnected(err error) {
	f.mu.Lock()
	f.connected = false
	f.lastErr = err.Error()
	f.mu.Unlock()
}

// fail records a fatal replication error: the loop exits and healthz
// reports unready until the follower is restarted (re-bootstrap is
// bounded by the leader's checkpoint interval).
func (f *Follower) fail(err error) {
	f.mu.Lock()
	f.fatal = true
	f.ready = false
	f.connected = false
	f.lastErr = err.Error()
	f.mu.Unlock()
}

// AppliedSeq returns the next sequence the replica will apply (= the
// number of leader events its state reflects).
func (f *Follower) AppliedSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appliedSeq
}

// WaitFor blocks until the replica has applied every event below seq, or
// the timeout expires, or the follower stops (fatal error or Close).
func (f *Follower) WaitFor(seq uint64, timeout time.Duration) error {
	deadline := f.clock.Now().Add(timeout)
	for {
		f.mu.Lock()
		applied, fatal, lastErr := f.appliedSeq, f.fatal, f.lastErr
		f.mu.Unlock()
		if applied >= seq {
			return nil
		}
		if fatal {
			return fmt.Errorf("repl: follower failed at %d/%d: %s", applied, seq, lastErr)
		}
		if f.clock.Now().After(deadline) {
			return fmt.Errorf("repl: timed out at %d/%d (last error: %q)", applied, seq, lastErr)
		}
		select {
		case <-f.ctx.Done():
			return fmt.Errorf("repl: follower closed at %d/%d", applied, seq)
		case <-f.clock.After(time.Millisecond):
		}
	}
}

// stats is the follower's replication view.
func (f *Follower) stats() platform.ReplStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := platform.ReplStats{
		Role:         RoleFollower,
		Ready:        f.ready && !f.fatal,
		AppliedSeq:   f.appliedSeq,
		LeaderSeq:    f.leaderSeq,
		LeaderURL:    f.opts.LeaderURL,
		Connected:    f.connected,
		SnapshotSeq:  f.snapshotSeq,
		Rebootstraps: f.rebootstraps,
		LastError:    f.lastErr,
		Epoch:        f.epoch.Epoch,
		EpochHolder:  f.epoch.Holder,
	}
	if f.leaderSeq > f.appliedSeq {
		st.Lag = f.leaderSeq - f.appliedSeq
	}
	return st
}

// stop halts the stream loop and waits for it. Idempotent.
func (f *Follower) stop() {
	f.mu.Lock()
	already := f.stopped
	f.stopped = true
	f.mu.Unlock()
	f.cancel()
	if !already {
		<-f.done
	}
}

// Close stops the stream loop. The engine keeps serving reads with the
// state it reached.
func (f *Follower) Close() error {
	f.stop()
	return nil
}

// promoted bundles the resources a durable promotion acquires; the Node
// takes ownership and closes them on shutdown. All nil for an ephemeral
// promotion.
type promoted struct {
	leader *Leader
	cp     *platform.Checkpointer
	j      *platform.Journal
	db     *storage.DB
	// warn is a non-fatal degradation (checkpointer failed to attach):
	// the promotion stands, and the Node surfaces this on its stats.
	warn error
}

// promote stops the stream and turns the replica into a leader at its
// applied sequence S, minting tok as the new leadership's fencing token.
// With a DataDir, the state is written as a snapshot record cut at S
// into a fresh store whose journal is seeded to continue at S — so the
// promoted node's history is, by construction, the prefix [0, S) it
// replicated, and surviving followers of the old leader can re-point
// here and resume their streams (any of them behind S must re-bootstrap,
// which the stream's snapshot_required path forces automatically). The
// token is persisted into the same store before the journal opens, so
// the epoch survives any later restart — kill -9 included — exactly like
// the journal cut does. A checkpointer is attached per opts.Checkpoint
// so the promoted journal keeps folding into snapshots, exactly like a
// leader started with -data. Without a DataDir the engine merely becomes
// writable.
//
// The target directory must be empty: promotion half-done into a dirty
// store is indistinguishable from data loss, so it is refused loudly.
func (f *Follower) promote(tok platform.EpochToken) (promoted, error) {
	f.stop()
	f.mu.Lock()
	seq := f.appliedSeq
	f.mu.Unlock()
	if f.opts.DataDir == "" {
		if err := f.engine.Promote(nil); err != nil {
			return promoted{}, err
		}
		return promoted{}, nil
	}
	db, err := storage.Open(f.opts.DataDir, f.opts.Storage)
	if err != nil {
		return promoted{}, fmt.Errorf("repl: promote: open store: %w", err)
	}
	fail := func(err error) (promoted, error) {
		db.Close()
		return promoted{}, err
	}
	if n, err := db.Count(""); err != nil {
		return fail(err)
	} else if n > 0 {
		return fail(fmt.Errorf("repl: promote: %s is not empty (%d keys); refusing to seed a dirty store", f.opts.DataDir, n))
	}
	data, err := f.engine.ExportState(seq)
	if err != nil {
		return fail(fmt.Errorf("repl: promote: export state: %w", err))
	}
	if _, err := storage.WriteSnapshot(db, platform.SnapshotPrefix, 1, seq, data); err != nil {
		return fail(fmt.Errorf("repl: promote: write snapshot: %w", err))
	}
	if err := platform.SeedJournalCut(db, seq); err != nil {
		return fail(err)
	}
	if !tok.IsZero() {
		if err := platform.SetJournalEpoch(db, tok); err != nil {
			return fail(err)
		}
	}
	j, err := platform.OpenJournalOpts(db, f.opts.Journal)
	if err != nil {
		return fail(fmt.Errorf("repl: promote: open journal: %w", err))
	}
	if err := f.engine.Promote(j); err != nil {
		j.Close()
		return fail(err)
	}
	out := promoted{leader: NewLeaderClock(j, db, f.clock), j: j, db: db}
	if co := f.opts.Checkpoint; co.EveryEvents > 0 || co.EveryBytes > 0 {
		cp, err := platform.NewCheckpointer(f.engine, co)
		if err != nil {
			// The promotion itself succeeded (writes are flowing into the
			// seeded journal); running uncheckpointed is degraded, not
			// fatal — same stance as a snapshot-disabled server. The Node
			// reports it on stats/healthz.
			out.warn = fmt.Errorf("repl: promote: checkpointer: %w", err)
		} else {
			out.cp = cp
		}
	}
	return out, nil
}
