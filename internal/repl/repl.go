// Package repl is the platform's journal-shipping replication subsystem.
//
// PR 1–3 made a single node's state a pure function of its journal: every
// mutation is a committed event, snapshots fold replayed prefixes, and
// recovery is load-snapshot + replay-tail, byte-identical to full replay.
// This package turns that same history into a replication substrate — no
// second source of truth is invented:
//
//   - A Leader serves the journal over HTTP: GET /api/repl/stream long-polls
//     committed events from a given sequence (fed by the journal's
//     committed-event tap, so a stream never sees an unacked write), and
//     GET /api/repl/snapshot serves the latest snapshot record.
//   - A Follower bootstraps exactly like a restart does — fetch the
//     snapshot, replay the tail — then applies the live stream through the
//     engine's replay path. Catch-up is therefore O(live state + tail),
//     bounded by the leader's checkpoint interval, never O(full history),
//     and a caught-up follower is byte-identical to the leader by
//     construction (and by test). The follower's engine is read-only:
//     writes are rejected with a redirect to the leader, while the read
//     API (projects, tasks, runs, stats, queue) serves locally.
//   - Promote turns a caught-up follower into a leader: its state is cut
//     as a snapshot at the applied sequence, a fresh journal is seeded to
//     continue the same sequence numbering, and writes are accepted again
//     — surviving followers can re-point and resume their streams without
//     re-bootstrapping.
//   - Ring is the consistent-hash partition map a front-end uses to route
//     projects across leaders, hashing the same shard key internal/sched
//     stripes by.
//
// A Node ties one role together and serves the /api/repl/* endpoints; the
// platform server's /api/stats and /api/healthz surface its view
// (role, applied/leader sequence, replication lag, readiness).
// ProbeHealth is the client side of that healthz surface, used by
// internal/gate's prober.
//
// Concurrency model: every exported type is safe for concurrent use. A
// Leader serves any number of follower streams, each long-poll riding
// its own request goroutine over the journal's multi-tap; a Follower
// runs one stream-pump goroutine applying events strictly in sequence;
// Node serializes role transitions (Promote) under its mutex; Ring
// guards its points with an RWMutex and is cheap to read concurrently.
package repl

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/platform"
)

// Roles a Node reports.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
)

// Errors surfaced by the subsystem.
var (
	// ErrSnapshotRequired means the requested stream position was folded
	// into a snapshot and truncated from the leader's journal; the
	// follower must re-bootstrap from the snapshot record.
	ErrSnapshotRequired = errors.New("repl: requested sequence truncated; bootstrap from snapshot")
	// ErrNotLeader is returned by replication reads against a follower.
	ErrNotLeader = errors.New("repl: node is not a leader")
	// ErrNotFollower is returned by Promote against a leader.
	ErrNotFollower = errors.New("repl: node is not a follower")
	// ErrEpochBehind is returned by a promotion whose fencing token does
	// not exceed every token the follower has already observed — minting
	// it would create a leader that is fenced on arrival.
	ErrEpochBehind = errors.New("repl: promotion epoch not newer than observed")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("repl: node is closed")
)

// Ring is a consistent-hash partition map: a fixed set of node names, each
// owning vnodes points on a hash circle, with every project id routed to
// the first point at or after its hash. It answers the question a
// front-end asks when projects are partitioned across leaders — "which
// leader owns project P?" — with the two properties that matter: every
// router with the same membership agrees, and membership changes move
// only ~1/n of the keyspace. The key hash is the same Fibonacci
// multiplicative hash internal/sched stripes projects across shards with,
// so a ring over one node degenerates to exactly the scheduler's shard
// key space.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVnodes is how many points each node owns when NewRing is given
// a non-positive count. 128 keeps the max/min load ratio near 1.1 for
// small clusters without making Lookup's binary search noticeable.
const DefaultVnodes = 128

// NewRing builds a ring with vnodes points per node (<= 0 uses
// DefaultVnodes).
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// shardKey is the hash internal/sched uses to stripe project ids across
// shards (Fibonacci/multiplicative), taken from the platform's canonical
// definition so the ring partitions the identical key space.
func shardKey(projectID int64) uint64 {
	return platform.ShardKey(projectID)
}

// pointHash spreads a node's virtual points over the circle. FNV-1a over
// the node name and point index, finished with a splitmix64 avalanche —
// FNV alone clusters similar inputs (adjacent point indexes differ in a
// few low bits), which skews ring balance badly. Stable across processes
// (no seed), so every router derives the same map from the same
// membership.
func pointHash(node string, i int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for j := 0; j < len(node); j++ {
		h ^= uint64(node[j])
		h *= prime64
	}
	for _, b := range []byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)} {
		h ^= uint64(b)
		h *= prime64
	}
	return mix64(h)
}

// mix64 is splitmix64's finalizer: a full-avalanche bijection over
// uint64.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add inserts a node (a no-op if present).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node (a no-op if absent). Keys it owned move to their
// successors; everything else stays put.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes lists the members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup routes a project id to its owning node ("" on an empty ring).
func (r *Ring) Lookup(projectID int64) string {
	return r.lookupHash(shardKey(projectID))
}

// LookupString routes an arbitrary string key (a project name, before an
// id exists) to its owning node.
func (r *Ring) LookupString(key string) string {
	return r.lookupHash(pointHash(key, 0))
}

// LookupKey routes a precomputed shard key — e.g. one a client echoed
// back from the platform's HeaderShardKey — to its owning node.
func (r *Ring) LookupKey(key uint64) string {
	return r.lookupHash(key)
}

// Candidates returns up to max distinct nodes in ring order starting at
// the owner of projectID — the owner first, then the failover successors
// a router walks when the owner is unhealthy. max <= 0 returns every
// node.
func (r *Ring) Candidates(projectID int64, max int) []string {
	return r.candidatesHash(shardKey(projectID), max)
}

// CandidatesKey is Candidates over a precomputed shard key.
func (r *Ring) CandidatesKey(key uint64, max int) []string {
	return r.candidatesHash(key, max)
}

// CandidatesString is Candidates over a string key (a project name).
func (r *Ring) CandidatesString(key string, max int) []string {
	return r.candidatesHash(pointHash(key, 0), max)
}

func (r *Ring) lookupHash(h uint64) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.searchLocked(h)].node
}

// searchLocked finds the first ring point at or after h (wrapping).
// Callers hold r.mu and guarantee a non-empty ring.
func (r *Ring) searchLocked(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return i
}

func (r *Ring) candidatesHash(h uint64, max int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.nodes) {
		max = len(r.nodes)
	}
	out := make([]string, 0, max)
	seen := make(map[string]struct{}, max)
	for i, start := r.searchLocked(h), 0; start < len(r.points) && len(out) < max; start++ {
		p := r.points[i]
		if _, dup := seen[p.node]; !dup {
			seen[p.node] = struct{}{}
			out = append(out, p.node)
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}
