package turkit

import (
	"fmt"
	"testing"

	"repro/internal/storage"
)

func openDB(t *testing.T) *storage.DB {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// crowdStub counts invocations, standing in for a real crowd call.
type crowdStub struct {
	calls int
}

func (c *crowdStub) ask(answer string) func() (string, error) {
	return func() (string, error) {
		c.calls++
		return answer, nil
	}
}

func TestOnceMemoizes(t *testing.T) {
	db := openDB(t)
	stub := &crowdStub{}

	run := func() (string, string) {
		s := NewScript(db, "exp", ModeNaive)
		a, err := s.Once("label-img1", stub.ask("Yes"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Once("label-img2", stub.ask("No"))
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	a1, b1 := run()
	if stub.calls != 2 {
		t.Fatalf("first run executed %d calls, want 2", stub.calls)
	}
	a2, b2 := run() // rerun: everything cached
	if stub.calls != 2 {
		t.Fatalf("rerun executed crowd calls: %d", stub.calls)
	}
	if a1 != a2 || b1 != b2 {
		t.Fatal("rerun returned different values")
	}
}

func TestCrashMidScriptResumes(t *testing.T) {
	db := openDB(t)
	stub := &crowdStub{}

	// First run "crashes" after the first call.
	s := NewScript(db, "exp", ModeNaive)
	if _, err := s.Once("step1", stub.ask("one")); err != nil {
		t.Fatal(err)
	}
	// Rerun from the top: step1 cached, step2 executes.
	s2 := NewScript(db, "exp", ModeNaive)
	v1, _ := s2.Once("step1", stub.ask("one-again"))
	v2, _ := s2.Once("step2", stub.ask("two"))
	if v1 != "one" {
		t.Fatalf("step1 re-executed: %q", v1)
	}
	if v2 != "two" || stub.calls != 2 {
		t.Fatalf("step2 = %q, calls = %d", v2, stub.calls)
	}
	if s2.CacheHits != 1 || s2.Executions != 1 {
		t.Fatalf("counters: %+v", s2)
	}
}

// TestNaiveSwapSilentlyWrong demonstrates the fragility the Reprowd paper
// describes: swapping two steps makes the naive positional cache hand each
// step the other's answer, with no error and no crowd calls.
func TestNaiveSwapSilentlyWrong(t *testing.T) {
	db := openDB(t)
	stub := &crowdStub{}

	s := NewScript(db, "exp", ModeNaive)
	s.Once("label-cat", stub.ask("cat-answer"))
	s.Once("label-dog", stub.ask("dog-answer"))

	// Ally swaps the two steps and reruns.
	s2 := NewScript(db, "exp", ModeNaive)
	dog, _ := s2.Once("label-dog", stub.ask("fresh-dog"))
	cat, _ := s2.Once("label-cat", stub.ask("fresh-cat"))

	if stub.calls != 2 {
		t.Fatalf("naive mode re-asked the crowd: %d calls", stub.calls)
	}
	// The wrong answers: dog got cat's memo and vice versa.
	if dog != "cat-answer" || cat != "dog-answer" {
		t.Fatalf("expected silently swapped answers, got dog=%q cat=%q", dog, cat)
	}
	if s2.Mismatches != 2 {
		t.Fatalf("mismatches = %d, want 2", s2.Mismatches)
	}
}

// TestStrictSwapInvalidates shows the defensive variant: the mismatch is
// detected, the suffix is discarded, and the crowd pays again.
func TestStrictSwapInvalidates(t *testing.T) {
	db := openDB(t)
	stub := &crowdStub{}

	s := NewScript(db, "exp", ModeStrict)
	s.Once("label-cat", stub.ask("cat-answer"))
	s.Once("label-dog", stub.ask("dog-answer"))
	if stub.calls != 2 {
		t.Fatal("setup")
	}

	s2 := NewScript(db, "exp", ModeStrict)
	dog, _ := s2.Once("label-dog", stub.ask("fresh-dog"))
	cat, _ := s2.Once("label-cat", stub.ask("fresh-cat"))

	// Correct answers this time — but paid for with fresh crowd work.
	if dog != "fresh-dog" || cat != "fresh-cat" {
		t.Fatalf("strict mode returned stale answers: dog=%q cat=%q", dog, cat)
	}
	if stub.calls != 4 {
		t.Fatalf("crowd calls = %d, want 4 (everything re-asked)", stub.calls)
	}
	if s2.Executions != 2 || s2.Mismatches != 1 {
		t.Fatalf("counters: %+v", s2)
	}
}

// TestInsertShiftsEverything: inserting one new step early invalidates (or
// corrupts) every later position.
func TestInsertShiftsEverything(t *testing.T) {
	for _, mode := range []Mode{ModeNaive, ModeStrict} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			db := openDB(t)
			stub := &crowdStub{}
			s := NewScript(db, "exp", mode)
			s.Once("a", stub.ask("va"))
			s.Once("b", stub.ask("vb"))
			s.Once("c", stub.ask("vc"))
			base := stub.calls

			// Rerun with a new step inserted after "a".
			s2 := NewScript(db, "exp", mode)
			va, _ := s2.Once("a", stub.ask("va2"))
			vNew, _ := s2.Once("new", stub.ask("vnew"))
			vb, _ := s2.Once("b", stub.ask("vb2"))
			vc, _ := s2.Once("c", stub.ask("vc2"))

			if va != "va" {
				t.Fatalf("unchanged prefix re-executed: %q", va)
			}
			switch mode {
			case ModeNaive:
				// "new" silently receives b's memo; b receives c's; c
				// finally executes.
				if vNew != "vb" || vb != "vc" {
					t.Fatalf("naive shift: new=%q b=%q", vNew, vb)
				}
				if stub.calls != base+1 {
					t.Fatalf("naive calls = %d, want %d", stub.calls, base+1)
				}
			case ModeStrict:
				// Suffix invalidated: new, b, c all re-execute.
				if vNew != "vnew" || vb != "vb2" || vc != "vc2" {
					t.Fatalf("strict shift: new=%q b=%q c=%q", vNew, vb, vc)
				}
				if stub.calls != base+3 {
					t.Fatalf("strict calls = %d, want %d", stub.calls, base+3)
				}
			}
		})
	}
}

func TestScriptsAreIsolatedByName(t *testing.T) {
	db := openDB(t)
	stub := &crowdStub{}
	s1 := NewScript(db, "one", ModeNaive)
	s1.Once("step", stub.ask("from-one"))
	s2 := NewScript(db, "two", ModeNaive)
	v, _ := s2.Once("step", stub.ask("from-two"))
	if v != "from-two" {
		t.Fatalf("scripts share memos: %q", v)
	}
	n, _ := s1.MemoCount()
	if n != 1 {
		t.Fatalf("memo count = %d", n)
	}
}

func TestOnceErrorNotMemoized(t *testing.T) {
	db := openDB(t)
	s := NewScript(db, "exp", ModeNaive)
	if _, err := s.Once("boom", func() (string, error) { return "", fmt.Errorf("crowd down") }); err == nil {
		t.Fatal("error swallowed")
	}
	// Retrying at the same position executes again (script restarts).
	s2 := NewScript(db, "exp", ModeNaive)
	v, err := s2.Once("boom", func() (string, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry: %q, %v", v, err)
	}
}
