// Package turkit re-implements TurKit's crash-and-rerun programming model
// (Little, Chilton, Goldman, Miller — UIST 2010) as the baseline Reprowd is
// compared against.
//
// TurKit memoizes the return value of each `once`-wrapped call in a
// database, keyed by the call's POSITION in the execution sequence. That
// makes reruns cheap, but — as the Reprowd paper argues — it makes the
// cache fragile under program edits: swapping two calls silently returns
// each call the other's cached value, and inserting a call shifts every
// later position. This package implements both the faithful positional
// cache (ModeNaive) and a defensive variant that detects name mismatches
// and invalidates the cache suffix (ModeStrict), so experiment E10 can
// quantify the paper's claim.
package turkit

import (
	"encoding/json"
	"fmt"

	"repro/internal/storage"
)

// Mode selects how the cache reacts to a call whose name does not match
// the memo recorded at its position.
type Mode int

const (
	// ModeNaive returns the positional memo regardless — the silent
	// wrong-result failure mode.
	ModeNaive Mode = iota
	// ModeStrict detects the mismatch, discards the memo suffix from the
	// mismatch position on, and re-executes — the safe but expensive
	// failure mode.
	ModeStrict
)

// Script is one crash-and-rerun program execution. Create it fresh for
// every (re)run over the same database to replay the memo sequence.
type Script struct {
	db     *storage.DB
	prefix string
	mode   Mode
	pos    int

	// Executions counts how many Once bodies actually ran (crowd calls).
	Executions int
	// CacheHits counts memoized returns.
	CacheHits int
	// Mismatches counts positional memos whose recorded name differed
	// from the call's name (ModeNaive returns them anyway; ModeStrict
	// invalidates).
	Mismatches int
}

// memo is one cached call result.
type memo struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// NewScript starts a (re)run of the script identified by name over db.
func NewScript(db *storage.DB, name string, mode Mode) *Script {
	return &Script{db: db, prefix: "turkit/" + name + "/", mode: mode}
}

func (s *Script) key(pos int) []byte {
	return []byte(fmt.Sprintf("%s%06d", s.prefix, pos))
}

// Once executes fn at most once per sequence position: if a memo exists at
// the current position it is returned without running fn (subject to the
// mode's mismatch handling). This is TurKit's `once` primitive.
func (s *Script) Once(name string, fn func() (string, error)) (string, error) {
	pos := s.pos
	s.pos++

	buf, ok, err := s.db.Get(s.key(pos))
	if err != nil {
		return "", err
	}
	if ok {
		var m memo
		if err := json.Unmarshal(buf, &m); err != nil {
			return "", fmt.Errorf("turkit: corrupt memo at %d: %w", pos, err)
		}
		if m.Name == name {
			s.CacheHits++
			return m.Value, nil
		}
		s.Mismatches++
		if s.mode == ModeNaive {
			// Faithful TurKit: positional lookup, name ignored. The
			// caller silently receives another call's answer.
			s.CacheHits++
			return m.Value, nil
		}
		// ModeStrict: the program changed; every memo from here on is
		// suspect. Drop the suffix and fall through to execution.
		if err := s.invalidateFrom(pos); err != nil {
			return "", err
		}
	}

	val, err := fn()
	if err != nil {
		return "", err
	}
	s.Executions++
	mbuf, err := json.Marshal(memo{Name: name, Value: val})
	if err != nil {
		return "", err
	}
	if err := s.db.Put(s.key(pos), mbuf); err != nil {
		return "", err
	}
	return val, nil
}

// invalidateFrom removes memos at positions ≥ pos.
func (s *Script) invalidateFrom(pos int) error {
	keys, err := s.db.Keys(s.prefix)
	if err != nil {
		return err
	}
	for _, k := range keys {
		var p int
		if _, err := fmt.Sscanf(k[len(s.prefix):], "%d", &p); err != nil {
			continue
		}
		if p >= pos {
			if err := s.db.Delete([]byte(k)); err != nil {
				return err
			}
		}
	}
	return nil
}

// MemoCount reports how many memos the script's database currently holds.
func (s *Script) MemoCount() (int, error) {
	return s.db.Count(s.prefix)
}
