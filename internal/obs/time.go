package obs

import "time"

// Now and Since are the observability layer's wall-clock reads, for code
// in the clock-disciplined core packages (internal/{platform,sched,repl,
// gate,storage}) that needs to *measure* real elapsed time — latency
// histograms, perf heuristics like the journal's adaptive group-commit
// window — without *acting* on wall time for any state decision.
//
// The determinism contract (docs/TESTING.md) splits time into two roles:
// time that logic acts on (timeouts, TTLs, tickers, timestamps that enter
// state) must flow through an injected vclock.Clock so simulation controls
// it; time that is merely observed may read the wall through these
// helpers, because metric samples never feed back into state. ci/clocklint
// bans time.Now/time.Since in the core packages; obs.Now/obs.Since are the
// sanctioned, greppable spelling of "this is a measurement, not a decision".

// Now returns the wall time, for pairing with Since around a measured
// region.
func Now() time.Time { return time.Now() }

// Since returns the wall time elapsed since start.
func Since(start time.Time) time.Duration { return time.Since(start) }
