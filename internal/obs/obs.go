// Package obs is the platform's observability subsystem: a dependency-free
// metrics registry with Prometheus text exposition, request-trace
// propagation helpers, structured-log setup, and debug (pprof/expvar)
// listeners.
//
// Design rules, in priority order:
//
//   - The hot path pays nothing when metrics are off. Every metric type is
//     a pointer whose methods are nil-safe no-ops, and a nil *Registry
//     hands out nil metrics — so instrumented code is written once, with
//     no conditionals, and the uninstrumented configuration compiles down
//     to a handful of predictable nil checks. Histogram.Start on a nil
//     receiver does not even read the clock.
//   - The instrumented path is lock-free. Counters and gauges are single
//     atomics; histograms are an atomic counter per bucket plus a CAS-add
//     float sum. No metric operation takes a mutex (only registration and
//     exposition do).
//   - Existing ad-hoc counters stay authoritative. Subsystems that already
//     export atomics through /api/stats register closure-backed
//     CounterFunc/GaugeFunc views over the same variables, so /metrics and
//     /api/stats cannot diverge.
//
// Metric names follow reprowd_<subsystem>_<name>_<unit>; ci/metriclint
// enforces the convention over the registration-site string literals.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the default histogram bounds for operation latencies,
// in seconds: 25µs to 10s, roughly logarithmic. The floor sits below the
// journal's non-fsync Submit latency (~18µs staged+flushed) so even the
// fastest path lands in a real bucket, and the ceiling above the slowest
// fsync-per-op configurations.
var LatencyBuckets = []float64{
	25e-6, 100e-6, 250e-6, 1e-3, 2.5e-3, 10e-3, 25e-3, 100e-3, 250e-3, 1, 2.5, 10,
}

// metric is one registered family: anything that can render itself in
// Prometheus text exposition format.
type metric interface {
	name() string
	expose(w *strings.Builder)
}

// Registry holds named metric families. The zero value is not usable; use
// New. A nil *Registry is the no-op configuration: every constructor
// returns a nil metric whose methods do nothing.
type Registry struct {
	mu     sync.Mutex
	byName map[string]metric
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// register adds m under its name, returning the already-registered family
// on a name collision (make must produce a compatible type; mismatches
// panic in the caller's type assertion, which is a programming error, not
// a runtime condition). Idempotent registration is load-bearing: a
// follower promotion builds a second journal against the same registry,
// and both must share one family.
func (r *Registry) register(name string, make func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := make()
	r.byName[name] = m
	return m
}

// Counter registers (or finds) a monotonically increasing counter.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, func() metric {
		return &Counter{meta: meta{nm: name, help: help}}
	}).(*Counter)
}

// Gauge registers (or finds) a settable float gauge. Returns nil on a nil
// registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, func() metric {
		return &Gauge{meta: meta{nm: name, help: help}}
	}).(*Gauge)
}

// Histogram registers (or finds) a fixed-bucket histogram. bounds are
// inclusive upper bounds in ascending order; +Inf is implicit. Nil bounds
// default to LatencyBuckets. Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	return r.register(name, func() metric {
		return &Histogram{
			meta:    meta{nm: name, help: help},
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
	}).(*Histogram)
}

// SampledHistogram registers a latency histogram whose Start/Stop pair
// times only one call in period (a power of two; the first call is always
// timed). Observe is unaffected. This is for paths hot enough that the
// two clock reads per operation would themselves violate the
// observability overhead budget: the histogram then holds an unbiased
// 1-in-period sample of the latency distribution, and its _count is the
// sample count, not the operation count (pair it with a CounterFunc over
// the subsystem's own op counter for exact rates).
func (r *Registry) SampledHistogram(name, help string, bounds []float64, period uint64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	var mask uint64
	if period > 1 && period&(period-1) == 0 {
		mask = period - 1
	}
	return r.register(name, func() metric {
		return &Histogram{
			meta:    meta{nm: name, help: help},
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
			mask:    mask,
		}
	}).(*Histogram)
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for subsystems that already keep their own
// atomics (journal flush counts, gateway routing stats): /metrics reads
// the very same variable /api/stats reports. Re-registration replaces the
// function (a promoted follower's new journal takes over its families).
// No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	m := r.register(name, func() metric {
		return &funcMetric{meta: meta{nm: name, help: help}, typ: "counter"}
	}).(*funcMetric)
	m.set(func() float64 { return float64(fn()) })
}

// GaugeFunc registers a gauge computed from fn at exposition time.
// Re-registration replaces the function. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.register(name, func() metric {
		return &funcMetric{meta: meta{nm: name, help: help}, typ: "gauge"}
	}).(*funcMetric)
	m.set(fn)
}

// CounterVec registers (or finds) a family of counters keyed by label
// values. Returns nil on a nil registry.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return r.register(name, func() metric {
		return &CounterVec{
			meta:     meta{nm: name, help: help},
			labels:   append([]string(nil), labels...),
			children: make(map[string]*Counter),
		}
	}).(*CounterVec)
}

// meta is the shared name/help of a family.
type meta struct {
	nm   string
	help string
}

func (m meta) name() string { return m.nm }

func (m meta) header(w *strings.Builder, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.nm, m.help, m.nm, typ)
}

// Counter is a monotonically increasing uint64. All methods are nil-safe
// no-ops.
type Counter struct {
	meta
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) expose(w *strings.Builder) {
	c.header(w, "counter")
	fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
}

// Gauge is a settable float64 (stored as bits in a uint64 atomic). All
// methods are nil-safe no-ops.
type Gauge struct {
	meta
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) expose(w *strings.Builder) {
	g.header(w, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.nm, formatFloat(g.Value()))
}

// Histogram is a fixed-bucket latency/size distribution. Buckets hold
// per-bound (non-cumulative) counts; exposition accumulates them into the
// Prometheus cumulative form. All methods are nil-safe no-ops.
type Histogram struct {
	meta
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-add
	// mask is period-1 for a sampled histogram (see SampledHistogram):
	// Start reads the clock only on every period-th call, because on a
	// microsecond-scale hot path the clock reads *are* the overhead.
	// 0 = every Start is timed.
	mask uint64
	tick atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v; len(bounds) means +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Start returns the wall clock for a later Stop. On a nil histogram it
// returns the zero time without reading the clock — the disabled hot path
// costs one branch.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	// Sampled histogram: time every period-th call only (the first call
	// is always timed, so short-lived processes still observe something).
	if h.mask != 0 && h.tick.Add(1)&h.mask != 1 {
		return time.Time{}
	}
	return time.Now()
}

// Stop observes the elapsed seconds since start (a Start result). A zero
// start — nil histogram, or a sampled-out Start — records nothing.
func (h *Histogram) Stop(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) expose(w *strings.Builder) {
	h.header(w, "histogram")
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, formatFloat(b), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", h.nm, h.count.Load())
}

// funcMetric is a closure-backed counter or gauge, read at exposition.
type funcMetric struct {
	meta
	typ string
	mu  sync.Mutex
	fn  func() float64
}

func (f *funcMetric) set(fn func() float64) {
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

func (f *funcMetric) expose(w *strings.Builder) {
	f.mu.Lock()
	fn := f.fn
	f.mu.Unlock()
	f.header(w, f.typ)
	var v float64
	if fn != nil {
		v = fn()
	}
	if f.typ == "counter" {
		fmt.Fprintf(w, "%s %d\n", f.nm, uint64(v))
		return
	}
	fmt.Fprintf(w, "%s %s\n", f.nm, formatFloat(v))
}

// CounterVec is a counter family with labels. Children are created on
// first use and live forever (label cardinality here is routes × nodes —
// small and bounded). All methods are nil-safe.
type CounterVec struct {
	meta
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label values (one per
// label name, in order). Nil-safe: returns nil on a nil vec. The child is
// cached; hot paths may also cache it themselves to skip the map lookup.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	if len(values) != len(v.labels) {
		// Programming error; surface it loudly rather than mislabel.
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.nm, len(v.labels), len(values)))
	}
	var lb strings.Builder
	lb.WriteByte('{')
	for i, l := range v.labels {
		if i > 0 {
			lb.WriteByte(',')
		}
		// %q escapes \, " and newlines — exactly the exposition format's
		// label escaping rules.
		fmt.Fprintf(&lb, "%s=%q", l, values[i])
	}
	lb.WriteByte('}')
	c := &Counter{meta: meta{nm: v.nm + lb.String()}}
	v.children[key] = c
	return c
}

func (v *CounterVec) expose(w *strings.Builder) {
	v.header(w, "counter")
	v.mu.Lock()
	kids := make([]*Counter, 0, len(v.children))
	for _, c := range v.children {
		kids = append(kids, c)
	}
	v.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool { return kids[i].nm < kids[j].nm })
	for _, c := range kids {
		fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
	}
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Expose renders every registered family, sorted by name, in Prometheus
// text exposition format (version 0.0.4). Empty on a nil registry.
func (r *Registry) Expose() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	fams := make([]metric, 0, len(r.byName))
	for _, m := range r.byName {
		fams = append(fams, m)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name() < fams[j].name() })
	var b strings.Builder
	for _, m := range fams {
		m.expose(&b)
	}
	return b.String()
}

// Handler serves GET /metrics. A nil registry serves an empty (valid)
// exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(r.Expose()))
	})
}
