package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestNilRegistryIsFreeAndSafe pins the no-op configuration: a nil
// registry hands out nil metrics whose every method is safe, and
// Histogram.Start does not read the clock.
func TestNilRegistryIsFreeAndSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("reprowd_x_ops_total", "h")
	g := r.Gauge("reprowd_x_depth", "h")
	h := r.Histogram("reprowd_x_op_seconds", "h", nil)
	v := r.CounterVec("reprowd_x_reqs_total", "h", "route")
	r.CounterFunc("reprowd_x_f_total", "h", func() uint64 { return 1 })
	r.GaugeFunc("reprowd_x_fg", "h", func() float64 { return 1 })

	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	h.Stop(h.Start())
	v.With("a").Inc()

	if !h.Start().IsZero() {
		t.Fatal("nil Histogram.Start must return the zero time without reading the clock")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if got := r.Expose(); got != "" {
		t.Fatalf("nil registry exposition = %q, want empty", got)
	}
}

// TestHistogramBucketBoundaries pins the `le` semantics: a sample equal
// to a bound lands in that bound's bucket (inclusive upper bound), and
// exposition buckets are cumulative.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("reprowd_t_op_seconds", "test", []float64{0.1, 1, 10})

	h.Observe(0.05) // below first bound → le="0.1"
	h.Observe(0.1)  // exactly on a bound → le="0.1" (inclusive)
	h.Observe(0.5)  // between bounds → le="1"
	h.Observe(10)   // exactly the last bound → le="10", not +Inf
	h.Observe(11)   // overflow → +Inf only

	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+10+11; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	out := r.Expose()
	for _, line := range []string{
		`reprowd_t_op_seconds_bucket{le="0.1"} 2`,
		`reprowd_t_op_seconds_bucket{le="1"} 3`,
		`reprowd_t_op_seconds_bucket{le="10"} 4`,
		`reprowd_t_op_seconds_bucket{le="+Inf"} 5`,
		`reprowd_t_op_seconds_count 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestExpositionGolden pins the full text format for one of each family
// type: HELP/TYPE headers, name-sorted families, histogram cumulative
// buckets with _sum/_count, label quoting.
func TestExpositionGolden(t *testing.T) {
	r := New()
	r.Counter("reprowd_t_b_total", "B counter.").Add(7)
	r.Gauge("reprowd_t_a_depth", "A gauge.").Set(2.5)
	h := r.Histogram("reprowd_t_c_seconds", "C histogram.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(2)
	v := r.CounterVec("reprowd_t_d_total", "D vec.", "route", "node")
	v.With("write", "n1").Inc()
	v.With("read", "n2").Add(3)
	r.CounterFunc("reprowd_t_e_total", "E func.", func() uint64 { return 42 })

	want := `# HELP reprowd_t_a_depth A gauge.
# TYPE reprowd_t_a_depth gauge
reprowd_t_a_depth 2.5
# HELP reprowd_t_b_total B counter.
# TYPE reprowd_t_b_total counter
reprowd_t_b_total 7
# HELP reprowd_t_c_seconds C histogram.
# TYPE reprowd_t_c_seconds histogram
reprowd_t_c_seconds_bucket{le="1"} 1
reprowd_t_c_seconds_bucket{le="2"} 2
reprowd_t_c_seconds_bucket{le="+Inf"} 2
reprowd_t_c_seconds_sum 2.5
reprowd_t_c_seconds_count 2
# HELP reprowd_t_d_total D vec.
# TYPE reprowd_t_d_total counter
reprowd_t_d_total{route="read",node="n2"} 3
reprowd_t_d_total{route="write",node="n1"} 1
# HELP reprowd_t_e_total E func.
# TYPE reprowd_t_e_total counter
reprowd_t_e_total 42
`
	if got := r.Expose(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistrationIsIdempotent pins the promotion-safety contract: the
// same name returns the same family (counts accumulate), and func
// re-registration replaces the closure (last writer wins).
func TestRegistrationIsIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("reprowd_t_x_total", "h")
	b := r.Counter("reprowd_t_x_total", "ignored")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("value = %d, want 2", a.Value())
	}

	r.CounterFunc("reprowd_t_f_total", "h", func() uint64 { return 1 })
	r.CounterFunc("reprowd_t_f_total", "h", func() uint64 { return 99 })
	if out := r.Expose(); !strings.Contains(out, "reprowd_t_f_total 99\n") {
		t.Fatalf("re-registered func must win:\n%s", out)
	}
}

// TestHandlerContentType pins the exposition endpoint's media type.
func TestHandlerContentType(t *testing.T) {
	r := New()
	r.Counter("reprowd_t_y_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "reprowd_t_y_total 1") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestCounterVecLabelEscaping pins that label values with quotes and
// backslashes render in valid exposition syntax.
func TestCounterVecLabelEscaping(t *testing.T) {
	r := New()
	r.CounterVec("reprowd_t_z_total", "h", "k").With(`a"b\c`).Inc()
	if out := r.Expose(); !strings.Contains(out, `reprowd_t_z_total{k="a\"b\\c"} 1`) {
		t.Fatalf("escaping wrong:\n%s", out)
	}
}

func TestTraceIDValidation(t *testing.T) {
	id := NewTraceID()
	if len(id) != 16 {
		t.Fatalf("NewTraceID length = %d, want 16 hex chars", len(id))
	}
	cases := []struct {
		header string
		minted bool // true when the gateway must replace it
	}{
		{"", true},
		{id, false},
		{"client-trace_1.2", false},
		{strings.Repeat("x", 65), true}, // over length cap
		{"bad\"quote", true},
		{"bad\\slash", true},
		{"bad\nnewline", true},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodGet, "/", nil)
		if tc.header != "" {
			req.Header.Set(HeaderTrace, tc.header)
		}
		got := EnsureTrace(req)
		if tc.minted && got == tc.header {
			t.Errorf("header %q must be replaced with a minted id", tc.header)
		}
		if !tc.minted && got != tc.header {
			t.Errorf("header %q must be kept, got %q", tc.header, got)
		}
		if req.Header.Get(HeaderTrace) != got {
			t.Errorf("EnsureTrace must stamp the request header (header %q)", tc.header)
		}
	}
}

func TestNewLoggerValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewLogger(&buf, "nope", "text"); err == nil {
		t.Fatal("unknown level must error")
	}
	if _, err := NewLogger(&buf, "info", "yaml"); err == nil {
		t.Fatal("unknown format must error")
	}
	lg, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON record: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "kept" || rec["k"] != "v" {
		t.Fatalf("record = %v", rec)
	}
}

// TestAccessLogTracePropagation pins the middleware contract: a trace id
// is minted (or kept), stamped on request and response, and logged.
func TestAccessLogTracePropagation(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	var seen string
	h := AccessLog(lg, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = TraceID(r)
		w.WriteHeader(http.StatusTeapot)
	}))

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	req.Header.Set(HeaderTrace, "trace-e2e-1")
	h.ServeHTTP(rec, req)

	if seen != "trace-e2e-1" {
		t.Fatalf("handler saw trace %q", seen)
	}
	if got := rec.Header().Get(HeaderTrace); got != "trace-e2e-1" {
		t.Fatalf("response trace header = %q", got)
	}
	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("access log not JSON: %v (%q)", err, buf.String())
	}
	if entry["trace"] != "trace-e2e-1" || entry["path"] != "/api/stats" ||
		entry["status"] != float64(http.StatusTeapot) {
		t.Fatalf("access log entry = %v", entry)
	}

	// No inbound header: the middleware mints one and reports it.
	buf.Reset()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Header().Get(HeaderTrace) == "" {
		t.Fatal("middleware must mint a trace id when the client sent none")
	}
}

// TestSampledHistogram pins the 1-in-period contract: the first Start is
// always timed, exactly one call per period reads the clock, Stop on a
// sampled-out (zero) start records nothing, and Observe stays unsampled.
func TestSampledHistogram(t *testing.T) {
	r := New()
	h := r.SampledHistogram("reprowd_t_s_seconds", "h", nil, 4)
	timed := 0
	for i := 0; i < 16; i++ {
		start := h.Start()
		if !start.IsZero() {
			timed++
		}
		h.Stop(start)
	}
	if timed != 4 {
		t.Fatalf("timed %d of 16 Starts, want 4 (period 4)", timed)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4 (sampled-out Stops must not record)", h.Count())
	}
	if first := r.SampledHistogram("reprowd_t_s2_seconds", "h", nil, 8).Start(); first.IsZero() {
		t.Fatal("first Start on a sampled histogram must be timed")
	}
	h.Observe(1)
	if h.Count() != 5 {
		t.Fatal("Observe must bypass sampling")
	}
	// Degenerate periods (0, 1, non-power-of-two) fall back to unsampled.
	u := r.SampledHistogram("reprowd_t_s3_seconds", "h", nil, 3)
	for i := 0; i < 3; i++ {
		if u.Start().IsZero() {
			t.Fatal("non-power-of-two period must disable sampling, not timing")
		}
	}
}

// TestHistogramStartStop sanity-checks the timing pair on a live
// histogram.
func TestHistogramStartStop(t *testing.T) {
	r := New()
	h := r.Histogram("reprowd_t_w_seconds", "h", nil)
	start := h.Start()
	if start.IsZero() {
		t.Fatal("live Start must read the clock")
	}
	time.Sleep(time.Millisecond)
	h.Stop(start)
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}
