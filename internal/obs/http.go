package obs

import (
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so long-poll streams
// (/api/repl/stream) keep flushing through the access-log wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps next with per-request structured logging. Every request
// is ensured a trace id (minted here if the client or gateway did not
// send one), the id is echoed on the response so callers can quote it,
// and the completion line carries method, path, status, bytes, duration
// and the id. A nil logger disables logging but still propagates traces.
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := EnsureTrace(r)
		w.Header().Set(HeaderTrace, trace)
		if logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		lv := slog.LevelInfo
		if sw.status >= 500 {
			lv = slog.LevelError
		}
		logger.Log(r.Context(), lv, "http",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur", time.Since(start).Round(time.Microsecond).String(),
			"trace", trace,
		)
	})
}

// DebugHandler returns the optional profiling surface: net/http/pprof and
// expvar on an explicit mux (never the default mux, which binaries must
// not leak onto their public listeners).
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// ServeDebug starts the pprof/expvar listener on addr in a background
// goroutine and returns the bound listener (its Addr carries the resolved
// port). The caller closes it on shutdown; serve errors after close are
// swallowed.
func ServeDebug(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(ln, DebugHandler())
	return ln, nil
}
