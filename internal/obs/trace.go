package obs

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// HeaderTrace carries a request's trace id across hops: minted at the
// gateway (or accepted from the client), forwarded on proxied writes, 307
// follows and read fan-outs, stamped on responses, and attached by
// followers to their replication stream polls — so one grep over the
// fleet's structured logs reconstructs a request's full cross-node path.
const HeaderTrace = "X-Reprowd-Trace"

// maxTraceLen bounds accepted client-supplied ids; longer values are
// re-minted rather than truncated (a hostile id should not be able to
// bloat every log line downstream).
const maxTraceLen = 64

// NewTraceID mints a 16-hex-char random id.
func NewTraceID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// validTrace reports whether a client-supplied id is safe to propagate
// verbatim: printable ASCII without spaces, quotes or backslashes, and
// bounded length.
func validTrace(id string) bool {
	if id == "" || len(id) > maxTraceLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// TraceID extracts the request's trace id, or "" if absent/invalid.
func TraceID(r *http.Request) string {
	id := r.Header.Get(HeaderTrace)
	if !validTrace(id) {
		return ""
	}
	return id
}

// EnsureTrace returns the request's trace id, minting one and setting it
// on the request headers when absent or invalid — so downstream proxying
// that copies headers propagates it for free.
func EnsureTrace(r *http.Request) string {
	if id := TraceID(r); id != "" {
		return id
	}
	id := NewTraceID()
	r.Header.Set(HeaderTrace, id)
	return id
}
