// Package distops is the distributed crowd-operator runtime: it executes
// the internal/ops operators against the ring-routed gateway across N
// partitions instead of one in-process engine.
//
// The pipeline has four stages:
//
//  1. A partition-aware planner (planner.go) splits an operator's pair
//     set into per-partition shards on the same consistent-hash ring the
//     gateway routes with, and pins each shard's CrowdData table to its
//     partition by choosing a table name whose project hashes there.
//  2. Task creation fans out through the gateway client's batched
//     AddTasks path with bounded concurrency (core.PublishOptions
//     BatchSize/Concurrency).
//  3. A streaming collector (collector.go) polls each shard's tasks and
//     emits every new answer as a Verdict the moment it lands, feeding
//     incremental quality inference (quality.OnlineDawidSkene) instead
//     of batching aggregation at drain.
//  4. Cross-node lineage: a persisted manifest records which partition
//     served each shard, so Lineage can reconstruct a run that spanned
//     the cluster (lineage.MergeShards).
//
// Everything rides on CrowdData, so the paper's crash-and-rerun
// contract survives distribution: rerunning CrowdJoin after a crash
// reuses every published task and collected answer on every partition.
package distops

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/quality"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// Config tunes a distributed operator run.
type Config struct {
	// Partitions names the ring partitions (leader node names). The
	// ring must be built from the same names the gateway routes with,
	// or shards land on the wrong leaders.
	Partitions []string
	// Vnodes is the ring's virtual-node count; zero means the default
	// the gateway uses.
	Vnodes int
	// Table is the logical table base name; shard tables derive from
	// it.
	Table string
	// Redundancy is answers per task; zero uses the context default.
	Redundancy int
	// BatchSize bounds each AddTasks call; zero means 256.
	BatchSize int
	// Concurrency bounds in-flight AddTasks batches per shard; zero
	// means 4.
	Concurrency int
	// PollInterval is the collector's pause between polling rounds;
	// zero means 2ms.
	PollInterval time.Duration
	// Clock paces the collector; nil uses the context clock.
	Clock vclock.Clock
	// Quality, when set, receives every verdict incrementally and
	// supplies the final decisions via Finalize — the online Dawid-Skene
	// path. When nil, decisions come from Aggregator at drain.
	Quality *quality.OnlineDawidSkene
	// Aggregator resolves votes when Quality is nil; nil means majority
	// vote, matching the in-process joins.
	Aggregator quality.Aggregator
	// OnVerdict, when set, observes every streamed verdict (after
	// Quality). Useful for progress reporting and tests.
	OnVerdict func(Verdict)
	// Answer makes the crowd answer one shard between publish and
	// collect — the distributed analogue of ops.Answerer. It runs
	// concurrently across shards while the collector streams results.
	Answer func(ShardRun) error
}

func (c Config) batchSize() int {
	if c.BatchSize <= 0 {
		return 256
	}
	return c.BatchSize
}

func (c Config) concurrency() int {
	if c.Concurrency <= 0 {
		return 4
	}
	return c.Concurrency
}

func (c Config) poll() time.Duration {
	if c.PollInterval <= 0 {
		return 2 * time.Millisecond
	}
	return c.PollInterval
}

// ShardRun describes one published shard to the Answer callback.
type ShardRun struct {
	// Partition is the ring partition (leader name) serving the shard.
	Partition string
	// Table is the shard's CrowdData table.
	Table string
	// ProjectID is the shard's platform project.
	ProjectID int64
	// Tasks is how many tasks the shard holds.
	Tasks int
}

// Verdict is one streamed answer, tagged with where it came from.
type Verdict struct {
	// Partition and Table locate the shard that served the answer.
	Partition, Table string
	// Item is the logical item the answer is about (the pair row id for
	// join workloads; the row key otherwise).
	Item string
	// RowKey is the shard row (platform external id).
	RowKey string
	// TaskID and RunID are the platform task and answer ids.
	TaskID, RunID int64
	// Worker and Value are the answer itself.
	Worker, Value string
}

// ShardStats accounts one shard's slice of a run.
type ShardStats struct {
	// Partition and Table locate the shard.
	Partition, Table string
	// Rows is the shard's row count.
	Rows int
	// Tasks is how many platform tasks the shard published.
	Tasks int
	// Answers is how many answers Collect persisted.
	Answers int
	// Streamed is how many verdicts the collector emitted live (before
	// the post-collect reconciliation).
	Streamed int
}

// Result is a distributed join's output.
type Result struct {
	// Matches is the predicted duplicate set, keyed by
	// metrics.PairKey(recordID, recordID).
	Matches map[string]bool
	// Decisions maps item (pair row id) → final decision.
	Decisions map[string]quality.Decision
	// Votes maps item → collected votes, for batch-vs-incremental
	// comparison.
	Votes map[string][]quality.Vote
	// Cost is the crowd spend across all shards.
	Cost metrics.Cost
	// Shards describes each partition's slice, sorted by partition.
	Shards []ShardStats
	// Streamed counts verdicts emitted live by the collectors.
	Streamed int
}

// CrowdJoin executes an entity-resolution/crowd-join pair workload
// across the partitioned cluster: plan shards, fan out task creation,
// stream verdicts into incremental quality inference, collect, decide.
// cc's client must speak to the gateway (or a single node, in which
// case everything lands on one partition).
func CrowdJoin(cc *core.CrowdContext, pairs []ops.ScoredPair, cfg Config) (Result, error) {
	res := Result{
		Matches:   map[string]bool{},
		Decisions: map[string]quality.Decision{},
		Votes:     map[string][]quality.Vote{},
	}
	if len(cfg.Partitions) == 0 {
		return res, fmt.Errorf("distops: no partitions configured")
	}
	if cfg.Table == "" {
		return res, fmt.Errorf("distops: no table name configured")
	}
	if len(pairs) == 0 {
		return res, nil
	}
	clock := cfg.Clock
	if clock == nil {
		clock = cc.Clock()
	}

	// Plan: shard the pair objects across partitions, remembering each
	// item's record ids for the match extraction at the end.
	objects := make([]core.Object, len(pairs))
	type pairIDs struct{ a, b string }
	itemPair := make(map[string]pairIDs, len(pairs))
	for i, sp := range pairs {
		objects[i] = ops.PairObject(sp.A, sp.B)
		itemPair[ops.PairRowID(sp.A.ID, sp.B.ID)] = pairIDs{a: sp.A.ID, b: sp.B.ID}
	}
	shards, err := planShards(cfg, cc.Key, objects)
	if err != nil {
		return res, err
	}

	// Shared verdict sink: incremental quality first, then the
	// caller's observer. Collector goroutines across shards serialize
	// here.
	var (
		emitMu   sync.Mutex
		streamed int
	)
	emit := func(v Verdict) {
		emitMu.Lock()
		streamed++
		if cfg.Quality != nil {
			cfg.Quality.Observe(v.Item, quality.Vote{Worker: v.Worker, Value: v.Value})
		}
		if cfg.OnVerdict != nil {
			cfg.OnVerdict(v)
		}
		emitMu.Unlock()
	}

	outs := make([]shardOut, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh shardPlan) {
			defer wg.Done()
			outs[i] = runShard(cc, cfg, clock, sh, emit)
		}(i, sh)
	}
	wg.Wait()

	for _, out := range outs {
		if out.err != nil && err == nil {
			err = out.err
		}
	}
	if err != nil {
		return res, err
	}
	for _, out := range outs {
		res.Shards = append(res.Shards, out.stats)
		res.Cost.Tasks += out.stats.Tasks
		res.Cost.Answers += out.stats.Answers
		for item, vs := range out.votes {
			res.Votes[item] = append(res.Votes[item], vs...)
		}
	}
	res.Streamed = streamed

	// Decide: incremental model if configured, batch aggregation
	// otherwise. Thanks to the post-collect reconciliation the
	// incremental model has seen exactly the collected vote multiset.
	if cfg.Quality != nil {
		fit := cfg.Quality.Finalize()
		for item := range res.Votes {
			if d, ok := fit.Decisions[item]; ok {
				res.Decisions[item] = d
			}
		}
	} else {
		agg := cfg.Aggregator
		if agg == nil {
			agg = quality.MajorityVote{}
		}
		res.Decisions = agg.Aggregate(res.Votes)
	}
	for item, d := range res.Decisions {
		if d.Value != "Yes" {
			continue
		}
		if p, ok := itemPair[item]; ok {
			res.Matches[metrics.PairKey(p.a, p.b)] = true
		}
	}

	// Persist the manifest so lineage can reconstruct the run from the
	// database alone.
	m := Manifest{Table: cfg.Table, Partitions: cfg.Partitions, Vnodes: cfg.Vnodes}
	for _, out := range outs {
		m.Shards = append(m.Shards, ShardRef{Partition: out.stats.Partition, Table: out.stats.Table})
	}
	if err := saveManifest(cc, m); err != nil {
		return res, err
	}
	return res, nil
}

// shardOut is one shard's contribution to the run.
type shardOut struct {
	stats ShardStats
	votes map[string][]quality.Vote
	err   error
}

// runShard drives one shard end to end: publish through the gateway,
// stream verdicts while the crowd answers, collect, reconcile.
func runShard(cc *core.CrowdContext, cfg Config, clock vclock.Clock, sh shardPlan, emit func(Verdict)) (out shardOut) {
	out.stats = ShardStats{Partition: sh.partition, Table: sh.table, Rows: len(sh.objects)}
	out.votes = map[string][]quality.Vote{}
	fail := func(err error) shardOut {
		out.err = fmt.Errorf("distops: shard %s on %s: %w", sh.table, sh.partition, err)
		return out
	}

	cd, err := cc.CrowdData(sh.objects, sh.table)
	if err != nil {
		return fail(err)
	}
	cd.SetPresenter(core.TextPair("Do these two records refer to the same entity?"))
	if _, err := cd.Publish(core.PublishOptions{
		Redundancy:  cfg.Redundancy,
		BatchSize:   cfg.batchSize(),
		Concurrency: cfg.concurrency(),
	}); err != nil {
		return fail(err)
	}
	pid, err := cd.ProjectID()
	if err != nil {
		return fail(err)
	}

	info := make(map[int64]taskIdent, cd.Len())
	for _, row := range cd.Rows() {
		if row.Task == nil {
			return fail(fmt.Errorf("row %s unpublished", row.Key))
		}
		info[row.Task.PlatformTaskID] = taskIdent{item: itemOf(row.Object, row.Key), rowKey: row.Key}
		out.stats.Tasks++
	}

	coll := &collector{
		client:    cc.Client(),
		projectID: pid,
		partition: sh.partition,
		table:     sh.table,
		poll:      cfg.poll(),
		clock:     clock,
		info:      info,
		emit:      emit,
		streamed:  map[int64]int{},
	}
	stop := make(chan struct{})
	collDone := make(chan error, 1)
	go func() { collDone <- coll.run(stop) }()

	var answerErr error
	if cfg.Answer != nil {
		answerErr = cfg.Answer(ShardRun{
			Partition: sh.partition,
			Table:     sh.table,
			ProjectID: pid,
			Tasks:     out.stats.Tasks,
		})
	}
	close(stop)
	collErr := <-collDone
	if answerErr != nil {
		return fail(fmt.Errorf("answer: %w", answerErr))
	}
	if collErr != nil {
		return fail(fmt.Errorf("collect stream: %w", collErr))
	}

	if _, err := cd.Collect(); err != nil {
		return fail(err)
	}
	// Reconcile: any answer Collect persisted that the collector missed
	// (it stops when every task reaches redundancy) still reaches the
	// incremental model, so streaming and batch see the same multiset.
	for _, row := range cd.Rows() {
		if row.Result == nil {
			continue
		}
		item := itemOf(row.Object, row.Key)
		for _, a := range row.Result.Answers {
			out.votes[item] = append(out.votes[item], quality.Vote{Worker: a.Worker, Value: a.Value})
		}
		out.stats.Answers += len(row.Result.Answers)
		have := coll.streamed[row.Task.PlatformTaskID]
		if len(row.Result.Answers) > have {
			for _, a := range row.Result.Answers[have:] {
				emit(Verdict{
					Partition: sh.partition,
					Table:     sh.table,
					Item:      item,
					RowKey:    row.Key,
					TaskID:    row.Task.PlatformTaskID,
					RunID:     a.RunID,
					Worker:    a.Worker,
					Value:     a.Value,
				})
			}
		}
		out.stats.Streamed += have
	}
	return out
}

// itemOf maps a row to its logical item: pair rows use the pair row id,
// anything else falls back to the row key.
func itemOf(obj core.Object, rowKey string) string {
	if a, b := obj["id_a"], obj["id_b"]; a != "" && b != "" {
		return ops.PairRowID(a, b)
	}
	return rowKey
}

// Manifest records how a distributed run was sharded, persisted next to
// the shard tables so lineage works from the database alone.
type Manifest struct {
	// Table is the logical table base name.
	Table string `json:"table"`
	// Partitions and Vnodes reproduce the planner's ring.
	Partitions []string `json:"partitions"`
	Vnodes     int      `json:"vnodes"`
	// Shards maps each shard table to the partition that served it.
	Shards []ShardRef `json:"shards"`
}

// ShardRef locates one shard of a distributed run.
type ShardRef struct {
	// Partition is the ring partition (leader name).
	Partition string `json:"partition"`
	// Table is the shard's CrowdData table.
	Table string `json:"table"`
}

// manifestKey namespaces distributed-run manifests in the context
// database ("d/" alongside core's "t/", "r/", "o/", "m/" columns).
func manifestKey(table string) string { return "d/" + table }

func saveManifest(cc *core.CrowdContext, m Manifest) error {
	sort.Slice(m.Shards, func(i, j int) bool {
		if m.Shards[i].Partition != m.Shards[j].Partition {
			return m.Shards[i].Partition < m.Shards[j].Partition
		}
		return m.Shards[i].Table < m.Shards[j].Table
	})
	buf, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("distops: encode manifest: %w", err)
	}
	b := storage.NewBatch()
	b.Put([]byte(manifestKey(m.Table)), buf)
	if err := cc.DB().Apply(b); err != nil {
		return err
	}
	return cc.DB().Sync()
}

// LoadManifest reads the persisted manifest of a distributed run.
func LoadManifest(cc *core.CrowdContext, table string) (Manifest, error) {
	buf, ok, err := cc.DB().Get([]byte(manifestKey(table)))
	if err != nil {
		return Manifest{}, err
	}
	if !ok {
		return Manifest{}, fmt.Errorf("distops: no distributed run recorded for table %q", table)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return Manifest{}, fmt.Errorf("distops: decode manifest: %w", err)
	}
	return m, nil
}

// Lineage reconstructs the cluster-spanning lineage of a distributed
// run from the database alone: the manifest names each shard and its
// partition, each shard table is reloaded and summarized, and the
// slices merge into one report.
func Lineage(cc *core.CrowdContext, table string) (lineage.DistReport, error) {
	m, err := LoadManifest(cc, table)
	if err != nil {
		return lineage.DistReport{}, err
	}
	shards := make([]lineage.ShardLineage, 0, len(m.Shards))
	for _, ref := range m.Shards {
		cd, err := cc.LoadTable(ref.Table)
		if err != nil {
			return lineage.DistReport{}, fmt.Errorf("distops: load shard %s: %w", ref.Table, err)
		}
		rep, err := lineage.Summarize(cc, cd)
		if err != nil {
			return lineage.DistReport{}, fmt.Errorf("distops: summarize shard %s: %w", ref.Table, err)
		}
		shards = append(shards, lineage.ShardLineage{Partition: ref.Partition, Table: ref.Table, Report: rep})
	}
	return lineage.MergeShards(m.Table, shards), nil
}
