package distops

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/repl"
)

// shardPlan is one partition's slice of a workload: the objects routed
// to it and the shard table whose backing project hashes onto it.
type shardPlan struct {
	partition string
	table     string
	objects   []core.Object
}

// planShards splits objects across the ring partitions. Rows are
// assigned by consistent-hashing their row key (so the split is
// deterministic and balanced), and each partition's shard gets a table
// name chosen so that the gateway — which places a project by hashing
// its name on the same ring — ensures the shard's project on exactly
// that partition. Disjointness is therefore by construction: no two
// shards share a table, project, or partition.
func planShards(cfg Config, keyOf func(core.Object) string, objects []core.Object) ([]shardPlan, error) {
	ring := repl.NewRing(cfg.Vnodes, cfg.Partitions...)
	byPart := map[string][]core.Object{}
	for _, obj := range objects {
		p := ring.LookupString(keyOf(obj))
		byPart[p] = append(byPart[p], obj)
	}
	var shards []shardPlan
	for i, p := range ring.Nodes() { // sorted, so shard numbering is stable
		objs := byPart[p]
		if len(objs) == 0 {
			continue
		}
		table, err := shardTableName(ring, cfg.Table, i, p)
		if err != nil {
			return nil, err
		}
		shards = append(shards, shardPlan{partition: p, table: table, objects: objs})
	}
	return shards, nil
}

// shardTableName finds a table name whose backing project
// ("reprowd-"+name, the CrowdData convention) the ring places on the
// wanted partition. The search mirrors how the gateway routes ensures —
// by hashing the project name — so planner and gateway always agree.
func shardTableName(ring *repl.Ring, base string, idx int, partition string) (string, error) {
	for j := 0; j < 100000; j++ {
		name := fmt.Sprintf("%s_p%d_%d", base, idx, j)
		if ring.LookupString("reprowd-"+name) == partition {
			return name, nil
		}
	}
	return "", fmt.Errorf("distops: no table name for %s hashes onto partition %s", base, partition)
}
