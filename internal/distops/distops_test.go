package distops

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/platform"
	"repro/internal/quality"
	"repro/internal/repl"
	"repro/internal/similarity"
	"repro/internal/vclock"
)

// testRecords builds a small corpus with planted duplicates: rec-i and
// dup-i share a name, everything else is distinct.
func testRecords(n int) ([]ops.Record, map[string]bool) {
	var records []ops.Record
	truth := map[string]bool{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("record number %03d with some text", i)
		records = append(records, ops.Record{ID: fmt.Sprintf("rec-%03d", i), Fields: map[string]string{"name": name}})
		if i%3 == 0 {
			records = append(records, ops.Record{ID: fmt.Sprintf("dup-%03d", i), Fields: map[string]string{"name": name + "!"}})
			truth[metrics.PairKey(fmt.Sprintf("rec-%03d", i), fmt.Sprintf("dup-%03d", i))] = true
		}
	}
	return records, truth
}

// detAnswer answers a pair task deterministically: the truth, flipped
// for ~errPct% of (worker, item) combinations via FNV.
func detAnswer(worker, item, truth string, errPct uint64) string {
	h := fnv.New64a()
	h.Write([]byte(worker + "|" + item))
	ans := truth
	if h.Sum64()%100 < errPct {
		if ans == "Yes" {
			ans = "No"
		} else {
			ans = "Yes"
		}
	}
	return ans
}

// driveShard makes `workers` deterministic workers answer every task of
// one shard through the client.
func driveShard(client platform.Client, sr ShardRun, workers int, truth map[string]bool, errPct uint64) error {
	for w := 0; w < workers; w++ {
		id := fmt.Sprintf("w-%d", w)
		for {
			task, err := client.RequestTask(sr.ProjectID, id)
			if errors.Is(err, platform.ErrNoTask) {
				break
			}
			if err != nil {
				return err
			}
			item := ops.PairRowID(task.Payload["id_a"], task.Payload["id_b"])
			want := "No"
			if truth[metrics.PairKey(task.Payload["id_a"], task.Payload["id_b"])] {
				want = "Yes"
			}
			if _, err := client.Submit(task.ID, id, detAnswer(id, item, want, errPct)); err != nil {
				return err
			}
		}
	}
	return nil
}

func newTestContext(t *testing.T, client platform.Client) *core.CrowdContext {
	t.Helper()
	cc, err := core.NewContext(core.Options{DBDir: t.TempDir(), Client: client, Clock: vclock.NewVirtual()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc
}

func TestCrowdJoinEndToEnd(t *testing.T) {
	records, truth := testRecords(40)
	pairs, err := ops.TopPairs(records, 120, similarity.Measure{})
	if err != nil {
		t.Fatal(err)
	}
	engine := platform.NewEngine(vclock.NewVirtual())
	cc := newTestContext(t, engine)

	const workers = 3
	online := quality.NewOnlineDawidSkene(quality.DawidSkene{}, 32)
	var verdictMu sync.Mutex
	perPartition := map[string]int{}
	itemShard := map[string]string{}
	cfg := Config{
		Partitions: []string{"n1", "n2", "n3"},
		Table:      "distjoin",
		Redundancy: workers,
		BatchSize:  16,
		Quality:    online,
		OnVerdict: func(v Verdict) {
			verdictMu.Lock()
			perPartition[v.Partition]++
			if prev, ok := itemShard[v.Item]; ok && prev != v.Partition {
				t.Errorf("item %s streamed from two partitions: %s and %s", v.Item, prev, v.Partition)
			}
			itemShard[v.Item] = v.Partition
			verdictMu.Unlock()
		},
		Answer: func(sr ShardRun) error { return driveShard(engine, sr, workers, truth, 10) },
	}
	res, err := CrowdJoin(cc, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Every pair became exactly one task on exactly one shard.
	if res.Cost.Tasks != len(pairs) {
		t.Fatalf("tasks = %d, want %d", res.Cost.Tasks, len(pairs))
	}
	if res.Cost.Answers != len(pairs)*workers {
		t.Fatalf("answers = %d, want %d", res.Cost.Answers, len(pairs)*workers)
	}
	if len(res.Shards) < 2 {
		t.Fatalf("expected the plan to use at least 2 partitions, got %d", len(res.Shards))
	}
	totalRows := 0
	for _, sh := range res.Shards {
		totalRows += sh.Rows
		if sh.Tasks != sh.Rows {
			t.Fatalf("shard %s: %d tasks for %d rows", sh.Table, sh.Tasks, sh.Rows)
		}
	}
	if totalRows != len(pairs) {
		t.Fatalf("shards cover %d rows, want %d", totalRows, len(pairs))
	}
	if len(itemShard) != len(pairs) {
		t.Fatalf("streamed %d distinct items, want %d", len(itemShard), len(pairs))
	}
	if res.Streamed != len(pairs)*workers {
		t.Fatalf("streamed %d verdicts, want %d", res.Streamed, len(pairs)*workers)
	}

	// The incremental decisions must match a batch Dawid-Skene fit over
	// the same collected votes.
	batch := quality.DawidSkene{}.Fit(res.Votes)
	if len(batch.Decisions) != len(res.Decisions) {
		t.Fatalf("decision counts differ: dist %d batch %d", len(res.Decisions), len(batch.Decisions))
	}
	for item, bd := range batch.Decisions {
		if od := res.Decisions[item]; od.Value != bd.Value {
			t.Fatalf("item %s: incremental %q vs batch %q", item, od.Value, bd.Value)
		}
	}

	// With 3 accurate-ish workers the planted duplicates should be found.
	score := metrics.PairQuality(res.Matches, truth)
	if score.F1 < 0.9 {
		t.Fatalf("F1 = %.3f, want >= 0.9 (matches=%d truth=%d)", score.F1, len(res.Matches), len(truth))
	}

	// Cross-node lineage reconstructs the run from the database alone.
	rep, err := Lineage(cc, "distjoin")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != len(pairs) || rep.TotalAnswers != len(pairs)*workers {
		t.Fatalf("lineage rows/answers = %d/%d, want %d/%d", rep.Rows, rep.TotalAnswers, len(pairs), len(pairs)*workers)
	}
	if len(rep.Shards) != len(res.Shards) {
		t.Fatalf("lineage shards = %d, want %d", len(rep.Shards), len(res.Shards))
	}
	if len(rep.Workers) != workers {
		t.Fatalf("lineage workers = %d, want %d", len(rep.Workers), workers)
	}
	for _, sh := range rep.Shards {
		if sh.Partition == "" || sh.Report.Rows == 0 {
			t.Fatalf("degenerate shard lineage: %+v", sh)
		}
	}

	// Rerun: crash-and-rerun must republish nothing and reproduce the
	// same matches (batch path this time; decisions come out the same).
	rerunCfg := cfg
	rerunCfg.Quality = nil
	rerunCfg.Aggregator = quality.DawidSkene{}
	rerunCfg.OnVerdict = nil
	rerunCfg.Answer = func(sr ShardRun) error { return nil } // nothing left to answer
	res2, err := CrowdJoin(cc, pairs, rerunCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost.Tasks != res.Cost.Tasks || res2.Cost.Answers != res.Cost.Answers {
		t.Fatalf("rerun cost %+v, first run %+v", res2.Cost, res.Cost)
	}
	if len(res2.Matches) != len(res.Matches) {
		t.Fatalf("rerun found %d matches, first run %d", len(res2.Matches), len(res.Matches))
	}
	for k := range res.Matches {
		if !res2.Matches[k] {
			t.Fatalf("rerun lost match %s", k)
		}
	}
	if st := engine.PlatformStats(); st.Tasks != len(pairs) {
		t.Fatalf("engine holds %d tasks after rerun, want %d (no republish)", st.Tasks, len(pairs))
	}
}

func TestPlanShardsDeterministicAndRingConsistent(t *testing.T) {
	records, _ := testRecords(30)
	pairs, err := ops.TopPairs(records, 80, similarity.Measure{})
	if err != nil {
		t.Fatal(err)
	}
	objects := make([]core.Object, len(pairs))
	for i, sp := range pairs {
		objects[i] = ops.PairObject(sp.A, sp.B)
	}
	cfg := Config{Partitions: []string{"a", "b", "c", "d"}, Table: "plan"}
	keyOf := core.DefaultKey

	first, err := planShards(cfg, keyOf, objects)
	if err != nil {
		t.Fatal(err)
	}
	again, err := planShards(cfg, keyOf, objects)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(again) {
		t.Fatalf("plans differ in shard count: %d vs %d", len(first), len(again))
	}
	ring := repl.NewRing(0, cfg.Partitions...)
	seenTables := map[string]bool{}
	seenParts := map[string]bool{}
	total := 0
	for i, sh := range first {
		if again[i].table != sh.table || again[i].partition != sh.partition || len(again[i].objects) != len(sh.objects) {
			t.Fatalf("plan not deterministic: %+v vs %+v", sh, again[i])
		}
		if seenTables[sh.table] || seenParts[sh.partition] {
			t.Fatalf("plan reuses table or partition: %s on %s", sh.table, sh.partition)
		}
		seenTables[sh.table], seenParts[sh.partition] = true, true
		// The shard's project must hash onto its partition on the same
		// ring the gateway uses — that is what makes placement real.
		if got := ring.LookupString("reprowd-" + sh.table); got != sh.partition {
			t.Fatalf("shard table %s hashes to %s, planned for %s", sh.table, got, sh.partition)
		}
		total += len(sh.objects)
	}
	if total != len(objects) {
		t.Fatalf("plan covers %d objects, want %d", total, len(objects))
	}
}

func TestCrowdJoinValidation(t *testing.T) {
	engine := platform.NewEngine(vclock.NewVirtual())
	cc := newTestContext(t, engine)
	pairs := []ops.ScoredPair{{A: ops.Record{ID: "a"}, B: ops.Record{ID: "b"}}}
	if _, err := CrowdJoin(cc, pairs, Config{Table: "t"}); err == nil {
		t.Fatal("no partitions should error")
	}
	if _, err := CrowdJoin(cc, pairs, Config{Partitions: []string{"n1"}}); err == nil {
		t.Fatal("no table should error")
	}
	res, err := CrowdJoin(cc, nil, Config{Partitions: []string{"n1"}, Table: "t"})
	if err != nil || len(res.Matches) != 0 {
		t.Fatalf("empty pair set = (%+v, %v), want empty result", res, err)
	}
}
