package distops

import (
	"time"

	"repro/internal/platform"
	"repro/internal/vclock"
)

// taskIdent maps a platform task back to its logical identity.
type taskIdent struct {
	item   string
	rowKey string
}

// collector streams one shard's answers as they land: it polls the
// shard's task list through the gateway, fetches runs for tasks whose
// answer count grew, and emits each previously unseen run as a Verdict.
// Runs are listed in id order, so per task the stream is a stable,
// growing prefix — the streamed count doubles as the resume cursor.
type collector struct {
	client    platform.Client
	projectID int64
	partition string
	table     string
	poll      time.Duration
	clock     vclock.Clock
	info      map[int64]taskIdent
	emit      func(Verdict)
	streamed  map[int64]int // task id → runs already emitted
}

// run polls until every task reaches its redundancy or stop closes;
// either way it finishes with a final sweep so nothing visible at stop
// time is dropped. The caller reads c.streamed after run returns to
// reconcile against Collect.
func (c *collector) run(stop <-chan struct{}) error {
	final := false
	for {
		select {
		case <-stop:
			final = true
		default:
		}
		tasks, err := c.client.Tasks(c.projectID)
		if err != nil {
			return err
		}
		done := len(tasks) > 0
		for _, t := range tasks {
			if t.NumAnswers > c.streamed[t.ID] {
				runs, err := c.client.Runs(t.ID)
				if err != nil {
					return err
				}
				id := c.info[t.ID]
				for _, r := range runs[min(c.streamed[t.ID], len(runs)):] {
					c.emit(Verdict{
						Partition: c.partition,
						Table:     c.table,
						Item:      id.item,
						RowKey:    id.rowKey,
						TaskID:    t.ID,
						RunID:     r.ID,
						Worker:    r.WorkerID,
						Value:     r.Answer,
					})
				}
				if len(runs) > c.streamed[t.ID] {
					c.streamed[t.ID] = len(runs)
				}
			}
			if t.NumAnswers < t.Redundancy {
				done = false
			}
		}
		if done || final {
			return nil
		}
		select {
		case <-stop:
			// Loop once more: the final sweep above runs with the
			// answerer's last writes visible.
		case <-c.clock.After(c.poll):
		}
	}
}
