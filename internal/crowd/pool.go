package crowd

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/platform"
	"repro/internal/vclock"
)

// Worker is one simulated crowd member.
type Worker struct {
	ID      string
	Model   AnswerModel
	Latency LatencyModel
	// MaxTasks caps how many answers this worker gives per Drain before
	// leaving (0 = unlimited). Real crowd workers do a handful of tasks
	// and move on; this models that churn.
	MaxTasks int
	rng      *rand.Rand
}

// Spec describes a homogeneous group of workers to add to a pool.
type Spec struct {
	// Count is how many workers with this profile to create.
	Count int
	// Model is their accuracy model.
	Model AnswerModel
	// Latency is their per-task latency model; nil means a fixed 30s.
	Latency LatencyModel
	// Prefix names the workers ("judge" → judge-0, judge-1, ...).
	// Defaults to the model name.
	Prefix string
	// MaxTasks caps answers per worker per Drain (0 = unlimited).
	MaxTasks int
}

// Pool is a set of simulated workers that can drain platform projects.
// Construction from a single seed makes every drain reproducible.
type Pool struct {
	Workers []*Worker
	clock   vclock.Clock
}

// NewPool builds a pool from specs. All randomness derives from seed; the
// clock (nil → shared virtual clock) supplies simulated timestamps.
func NewPool(seed int64, clock vclock.Clock, specs ...Spec) *Pool {
	if clock == nil {
		clock = vclock.NewVirtual()
	}
	master := rand.New(rand.NewSource(seed))
	p := &Pool{clock: clock}
	for _, s := range specs {
		prefix := s.Prefix
		if prefix == "" {
			prefix = s.Model.Name()
		}
		lat := s.Latency
		if lat == nil {
			lat = FixedLatency{D: 30 * time.Second}
		}
		for i := 0; i < s.Count; i++ {
			p.Workers = append(p.Workers, &Worker{
				ID:       fmt.Sprintf("%s-%d", prefix, i),
				Model:    s.Model,
				Latency:  lat,
				MaxTasks: s.MaxTasks,
				rng:      rand.New(rand.NewSource(master.Int63())),
			})
		}
	}
	return p
}

// Clock returns the clock driving the pool's simulated time.
func (p *Pool) Clock() vclock.Clock { return p.clock }

// DrainStats summarizes one Drain call.
type DrainStats struct {
	// Answers is the number of task runs submitted.
	Answers int
	// PerWorker counts answers by worker id.
	PerWorker map[string]int
	// SimulatedWall is the simulated time from first assignment to last
	// submission.
	SimulatedWall time.Duration
}

// workerEvent orders workers by when they next become free.
type workerEvent struct {
	at  time.Time
	idx int // index into Pool.Workers, breaks ties deterministically
}

type eventHeap []workerEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].idx < h[j].idx
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(workerEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Drain runs the pool against a project until no worker can get another
// task: every task either reached its redundancy or has been answered by
// every worker. The simulation is event-driven — the worker who becomes
// free earliest (ties by index) acts next — so a given (pool, project)
// pair always drains identically.
func (p *Pool) Drain(client platform.Client, projectID int64, oracle Oracle) (DrainStats, error) {
	stats := DrainStats{PerWorker: make(map[string]int)}
	if len(p.Workers) == 0 {
		return stats, nil
	}
	virt, _ := p.clock.(*vclock.Virtual)

	start := p.clock.Now()
	var h eventHeap
	for i := range p.Workers {
		heap.Push(&h, workerEvent{at: start, idx: i})
	}
	var last time.Time
	for h.Len() > 0 {
		ev := heap.Pop(&h).(workerEvent)
		w := p.Workers[ev.idx]
		if w.MaxTasks > 0 && stats.PerWorker[w.ID] >= w.MaxTasks {
			continue // quota reached: the worker leaves
		}
		if virt != nil {
			virt.AdvanceTo(ev.at)
		}
		task, err := client.RequestTask(projectID, w.ID)
		if errors.Is(err, platform.ErrNoTask) || errors.Is(err, platform.ErrWorkerBanned) {
			continue // worker exhausted or banned; do not requeue
		}
		if err != nil {
			return stats, fmt.Errorf("crowd: worker %s request: %w", w.ID, err)
		}
		think := w.Latency.Draw(w.rng)
		if think < 0 {
			think = 0
		}
		doneAt := ev.at.Add(think)
		if virt != nil {
			virt.AdvanceTo(doneAt)
		} else {
			p.clock.Sleep(0) // wall clock: no artificial delay
		}
		answer := w.Model.Answer(w.rng, oracle.Truth(task.Payload), oracle.Options(task.Payload))
		run, err := client.Submit(task.ID, w.ID, answer)
		if err != nil && !errors.Is(err, platform.ErrTaskCompleted) && !errors.Is(err, platform.ErrDuplicateAnswer) {
			return stats, fmt.Errorf("crowd: worker %s submit: %w", w.ID, err)
		}
		if err == nil {
			stats.Answers++
			stats.PerWorker[w.ID]++
			if run.Finished.After(last) {
				last = run.Finished
			}
		}
		heap.Push(&h, workerEvent{at: doneAt, idx: ev.idx})
	}
	if !last.IsZero() {
		stats.SimulatedWall = last.Sub(start)
	}
	return stats, nil
}
