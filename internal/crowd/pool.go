package crowd

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/platform"
	"repro/internal/vclock"
)

// Worker is one simulated crowd member.
type Worker struct {
	ID      string
	Model   AnswerModel
	Latency LatencyModel
	// MaxTasks caps how many answers this worker gives per Drain before
	// leaving (0 = unlimited). Real crowd workers do a handful of tasks
	// and move on; this models that churn.
	MaxTasks int
	// Dropout is the probability (per assignment, drawn from the
	// worker's seeded rng) that the worker requests a task and then
	// leaves the drain without submitting — the churn case PyBossa-style
	// platforms see constantly. The abandoned lease stays outstanding
	// until the scheduler's TTL reclaims it, so a pool with dropout
	// exercises TTL reclaim under load (remaining workers wait out the
	// expiry; see Drain).
	Dropout float64
	// ReturnDelay turns dropout's abandon-and-leave into
	// abandon-and-return: a worker who drops an assignment comes back
	// after this much simulated time and requests again. A return within
	// the scheduler's lease TTL reconnects to the same abandoned task
	// (the lease is still the worker's), exercising the reconnect path
	// under churn; a longer delay finds the lease reclaimed and competes
	// for whatever is open. Zero keeps abandon-and-leave.
	ReturnDelay time.Duration
	rng         *rand.Rand
}

// Spec describes a homogeneous group of workers to add to a pool.
type Spec struct {
	// Count is how many workers with this profile to create.
	Count int
	// Model is their accuracy model.
	Model AnswerModel
	// Latency is their per-task latency model; nil means a fixed 30s.
	Latency LatencyModel
	// Prefix names the workers ("judge" → judge-0, judge-1, ...).
	// Defaults to the model name.
	Prefix string
	// MaxTasks caps answers per worker per Drain (0 = unlimited).
	MaxTasks int
	// Dropout is each worker's probability of abandoning an assignment
	// (request, never submit); see Worker.Dropout.
	Dropout float64
	// ReturnDelay makes dropout workers return and request again after
	// this much simulated time; see Worker.ReturnDelay.
	ReturnDelay time.Duration
}

// Pool is a set of simulated workers that can drain platform projects.
// Construction from a single seed makes every drain reproducible.
type Pool struct {
	Workers []*Worker
	clock   vclock.Clock
}

// NewPool builds a pool from specs. All randomness derives from seed; the
// clock (nil → shared virtual clock) supplies simulated timestamps.
func NewPool(seed int64, clock vclock.Clock, specs ...Spec) *Pool {
	if clock == nil {
		clock = vclock.NewVirtual()
	}
	master := rand.New(rand.NewSource(seed))
	p := &Pool{clock: clock}
	for _, s := range specs {
		prefix := s.Prefix
		if prefix == "" {
			prefix = s.Model.Name()
		}
		lat := s.Latency
		if lat == nil {
			lat = FixedLatency{D: 30 * time.Second}
		}
		for i := 0; i < s.Count; i++ {
			p.Workers = append(p.Workers, &Worker{
				ID:          fmt.Sprintf("%s-%d", prefix, i),
				Model:       s.Model,
				Latency:     lat,
				MaxTasks:    s.MaxTasks,
				Dropout:     s.Dropout,
				ReturnDelay: s.ReturnDelay,
				rng:         rand.New(rand.NewSource(master.Int63())),
			})
		}
	}
	return p
}

// Clock returns the clock driving the pool's simulated time.
func (p *Pool) Clock() vclock.Clock { return p.clock }

// DrainStats summarizes one Drain call.
type DrainStats struct {
	// Answers is the number of task runs submitted.
	Answers int
	// PerWorker counts answers by worker id.
	PerWorker map[string]int
	// Dropouts counts assignments abandoned by dropout workers (the
	// lease was taken and never submitted against).
	Dropouts int
	// Returns counts re-entries: a dropout worker with a ReturnDelay
	// coming back and requesting again after abandoning an assignment.
	Returns int
	// SimulatedWall is the simulated time from first assignment to last
	// submission.
	SimulatedWall time.Duration
}

// workerEvent orders workers by when they next become free.
type workerEvent struct {
	at  time.Time
	idx int // index into Pool.Workers, breaks ties deterministically
}

type eventHeap []workerEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].idx < h[j].idx
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(workerEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Patience of workers waiting out other workers' abandoned leases: when
// the pool contains dropout workers, a worker finding no eligible task
// retries every noTaskRetry of simulated time, up to maxIdleRetries
// consecutive failures, so that leases expiring under the scheduler's TTL
// are reclaimed instead of stranding tasks. Pools without dropout keep
// the original leave-on-first-ErrNoTask behavior (and its exact event
// sequence).
const (
	noTaskRetry    = 30 * time.Second
	maxIdleRetries = 240 // 2 simulated hours of patience
)

// hasDropout reports whether any worker can abandon assignments.
func (p *Pool) hasDropout() bool {
	for _, w := range p.Workers {
		if w.Dropout > 0 {
			return true
		}
	}
	return false
}

// Drain runs the pool against a project until no worker can get another
// task: every task either reached its redundancy or has been answered by
// every worker. The simulation is event-driven — the worker who becomes
// free earliest (ties by index) acts next — so a given (pool, project)
// pair always drains identically.
func (p *Pool) Drain(client platform.Client, projectID int64, oracle Oracle) (DrainStats, error) {
	stats := DrainStats{PerWorker: make(map[string]int)}
	if len(p.Workers) == 0 {
		return stats, nil
	}
	virt, _ := p.clock.(*vclock.Virtual)
	patient := p.hasDropout()
	idle := make([]int, len(p.Workers))    // consecutive fruitless requests
	returns := make([]int, len(p.Workers)) // abandon-and-return re-entries

	start := p.clock.Now()
	var h eventHeap
	for i := range p.Workers {
		heap.Push(&h, workerEvent{at: start, idx: i})
	}
	var last time.Time
	for h.Len() > 0 {
		ev := heap.Pop(&h).(workerEvent)
		w := p.Workers[ev.idx]
		if w.MaxTasks > 0 && stats.PerWorker[w.ID] >= w.MaxTasks {
			continue // quota reached: the worker leaves
		}
		if virt != nil {
			virt.AdvanceTo(ev.at)
		}
		task, err := client.RequestTask(projectID, w.ID)
		if errors.Is(err, platform.ErrNoTask) {
			// Nothing eligible right now. A patient pool waits for
			// abandoned leases to expire and be reclaimed; otherwise the
			// worker leaves.
			if patient && idle[ev.idx] < maxIdleRetries {
				idle[ev.idx]++
				heap.Push(&h, workerEvent{at: ev.at.Add(noTaskRetry), idx: ev.idx})
			}
			continue
		}
		if errors.Is(err, platform.ErrWorkerBanned) {
			continue // banned; do not requeue
		}
		if err != nil {
			return stats, fmt.Errorf("crowd: worker %s request: %w", w.ID, err)
		}
		idle[ev.idx] = 0
		if w.Dropout > 0 && w.rng.Float64() < w.Dropout {
			// The worker abandons the assignment; its lease stays
			// outstanding until the scheduler reclaims it. With a
			// ReturnDelay the worker comes back and requests again —
			// reconnecting to the same task while the lease lives —
			// otherwise it walks away for good. Re-entries are capped so
			// a worker who always abandons (Dropout 1) still terminates.
			stats.Dropouts++
			if w.ReturnDelay > 0 && returns[ev.idx] < maxIdleRetries {
				returns[ev.idx]++
				stats.Returns++
				heap.Push(&h, workerEvent{at: ev.at.Add(w.ReturnDelay), idx: ev.idx})
			}
			continue
		}
		think := w.Latency.Draw(w.rng)
		if think < 0 {
			think = 0
		}
		doneAt := ev.at.Add(think)
		if virt != nil {
			virt.AdvanceTo(doneAt)
		} else {
			p.clock.Sleep(0) // wall clock: no artificial delay
		}
		answer := w.Model.Answer(w.rng, oracle.Truth(task.Payload), oracle.Options(task.Payload))
		run, err := client.Submit(task.ID, w.ID, answer)
		if err != nil && !errors.Is(err, platform.ErrTaskCompleted) && !errors.Is(err, platform.ErrDuplicateAnswer) {
			return stats, fmt.Errorf("crowd: worker %s submit: %w", w.ID, err)
		}
		if err == nil {
			stats.Answers++
			stats.PerWorker[w.ID]++
			if run.Finished.After(last) {
				last = run.Finished
			}
		}
		heap.Push(&h, workerEvent{at: doneAt, idx: ev.idx})
	}
	if !last.IsZero() {
		stats.SimulatedWall = last.Sub(start)
	}
	return stats, nil
}
