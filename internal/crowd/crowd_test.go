package crowd

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/platform"
	"repro/internal/vclock"
)

// labelOracle answers from a payload key; options are fixed.
var labelOracle = FuncOracle{
	TruthFunc:   func(p map[string]string) string { return p["truth"] },
	OptionsFunc: func(map[string]string) []string { return []string{"yes", "no"} },
}

func TestPerfectAndAdversary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	opts := []string{"yes", "no", "maybe"}
	if got := (Perfect{}).Answer(rng, "yes", opts); got != "yes" {
		t.Fatalf("Perfect answered %q", got)
	}
	if got := (Adversary{}).Answer(rng, "yes", opts); got == "yes" {
		t.Fatalf("Adversary answered correctly")
	}
}

func TestUniformAccuracyConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Uniform{P: 0.8}
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Answer(rng, "yes", []string{"yes", "no"}) == "yes" {
			correct++
		}
	}
	acc := float64(correct) / n
	if acc < 0.78 || acc > 0.82 {
		t.Fatalf("Uniform(0.8) empirical accuracy = %.3f", acc)
	}
}

func TestUniformSingleOptionAlwaysTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Uniform{P: 0}
	if got := m.Answer(rng, "only", []string{"only"}); got != "only" {
		t.Fatalf("no wrong options available, got %q", got)
	}
}

func TestTwoCoinAsymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := TwoCoin{Positive: "yes", Negative: "no", TPR: 0.9, TNR: 0.6}
	tp, tn := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Answer(rng, "yes", nil) == "yes" {
			tp++
		}
		if m.Answer(rng, "no", nil) == "no" {
			tn++
		}
	}
	if got := float64(tp) / n; got < 0.88 || got > 0.92 {
		t.Fatalf("TPR = %.3f, want ≈0.9", got)
	}
	if got := float64(tn) / n; got < 0.58 || got > 0.62 {
		t.Fatalf("TNR = %.3f, want ≈0.6", got)
	}
}

func TestConfusionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := Confusion{Rows: map[string]map[string]float64{
		"a": {"a": 0.5, "b": 0.5, "c": 0},
	}}
	opts := []string{"a", "b", "c"}
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.Answer(rng, "a", opts)]++
	}
	if counts["c"] != 0 {
		t.Fatalf("zero-probability option chosen %d times", counts["c"])
	}
	if f := float64(counts["a"]) / n; f < 0.47 || f > 0.53 {
		t.Fatalf("P(a|a) = %.3f, want ≈0.5", f)
	}
	// Unknown truth falls back to truth.
	if got := m.Answer(rng, "zz", opts); got != "zz" {
		t.Fatalf("missing row: got %q", got)
	}
}

func TestSpammerUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[(Spammer{}).Answer(rng, "yes", []string{"yes", "no", "maybe"})]++
	}
	for _, o := range []string{"yes", "no", "maybe"} {
		f := float64(counts[o]) / n
		if f < 0.30 || f > 0.37 {
			t.Fatalf("spammer P(%s) = %.3f, want ≈1/3", o, f)
		}
	}
	if got := (Spammer{}).Answer(rng, "x", nil); got != "" {
		t.Fatalf("spammer with no options: %q", got)
	}
}

func TestLatencyModels(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	if d := (FixedLatency{D: time.Minute}).Draw(rng); d != time.Minute {
		t.Fatalf("fixed latency %v", d)
	}
	u := UniformLatency{Min: time.Second, Max: 10 * time.Second}
	for i := 0; i < 1000; i++ {
		d := u.Draw(rng)
		if d < time.Second || d > 10*time.Second {
			t.Fatalf("uniform latency %v out of range", d)
		}
	}
	if d := (UniformLatency{Min: 5, Max: 5}).Draw(rng); d != 5 {
		t.Fatalf("degenerate uniform latency %v", d)
	}
	e := ExpLatency{Mean: 30 * time.Second}
	var sum time.Duration
	for i := 0; i < 5000; i++ {
		sum += e.Draw(rng)
	}
	mean := sum / 5000
	if mean < 25*time.Second || mean > 35*time.Second {
		t.Fatalf("exp latency mean %v, want ≈30s", mean)
	}
}

func newProject(t *testing.T, engine *platform.Engine, redundancy, nTasks int) platform.Project {
	t.Helper()
	p, err := engine.EnsureProject(platform.ProjectSpec{Name: "test", Redundancy: redundancy})
	if err != nil {
		t.Fatal(err)
	}
	var specs []platform.TaskSpec
	for i := 0; i < nTasks; i++ {
		truth := "yes"
		if i%2 == 1 {
			truth = "no"
		}
		specs = append(specs, platform.TaskSpec{
			ExternalID: fmt.Sprintf("t%d", i),
			Payload:    map[string]string{"truth": truth},
		})
	}
	if _, err := engine.AddTasks(p.ID, specs); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDrainCompletesAllTasks(t *testing.T) {
	clock := vclock.NewVirtual()
	engine := platform.NewEngine(clock)
	p := newProject(t, engine, 3, 10)
	pool := NewPool(42, clock, Spec{Count: 5, Model: Uniform{P: 0.8}, Prefix: "w"})

	stats, err := pool.Drain(engine, p.ID, labelOracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Answers != 30 {
		t.Fatalf("answers = %d, want 30 (10 tasks × r=3)", stats.Answers)
	}
	st, _ := engine.Stats(p.ID)
	if st.CompletedTasks != 10 {
		t.Fatalf("completed = %d, want 10", st.CompletedTasks)
	}
	if stats.SimulatedWall <= 0 {
		t.Fatal("simulated wall time not tracked")
	}
	// Each task answered by 3 distinct workers.
	tasks, _ := engine.Tasks(p.ID)
	for _, task := range tasks {
		runs, _ := engine.Runs(task.ID)
		seen := map[string]bool{}
		for _, r := range runs {
			if seen[r.WorkerID] {
				t.Fatalf("task %d answered twice by %s", task.ID, r.WorkerID)
			}
			seen[r.WorkerID] = true
		}
		if len(seen) != 3 {
			t.Fatalf("task %d has %d distinct workers", task.ID, len(seen))
		}
	}
}

func TestDrainInsufficientWorkers(t *testing.T) {
	// Redundancy 5 but only 2 workers: every task gets exactly 2 answers
	// and Drain still terminates.
	clock := vclock.NewVirtual()
	engine := platform.NewEngine(clock)
	p := newProject(t, engine, 5, 4)
	pool := NewPool(1, clock, Spec{Count: 2, Model: Perfect{}})
	stats, err := pool.Drain(engine, p.ID, labelOracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Answers != 8 {
		t.Fatalf("answers = %d, want 8", stats.Answers)
	}
	st, _ := engine.Stats(p.ID)
	if st.CompletedTasks != 0 {
		t.Fatalf("completed = %d, want 0 (not enough workers)", st.CompletedTasks)
	}
}

func TestDrainDeterministic(t *testing.T) {
	run := func() string {
		clock := vclock.NewVirtual()
		engine := platform.NewEngine(clock)
		p := newProject(t, engine, 3, 8)
		pool := NewPool(99, clock,
			Spec{Count: 3, Model: Uniform{P: 0.7}, Latency: ExpLatency{Mean: time.Minute}, Prefix: "a"},
			Spec{Count: 2, Model: Spammer{}, Latency: UniformLatency{Min: time.Second, Max: time.Hour}, Prefix: "s"},
		)
		if _, err := pool.Drain(engine, p.ID, labelOracle); err != nil {
			t.Fatal(err)
		}
		out := ""
		tasks, _ := engine.Tasks(p.ID)
		for _, task := range tasks {
			runs, _ := engine.Runs(task.ID)
			for _, r := range runs {
				out += fmt.Sprintf("%d:%s=%s@%s;", task.ID, r.WorkerID, r.Answer, r.Finished)
			}
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("drain not deterministic:\n%s\n%s", a, b)
	}
}

func TestDrainEmptyPool(t *testing.T) {
	clock := vclock.NewVirtual()
	engine := platform.NewEngine(clock)
	p := newProject(t, engine, 3, 2)
	pool := &Pool{clock: clock}
	stats, err := pool.Drain(engine, p.ID, labelOracle)
	if err != nil || stats.Answers != 0 {
		t.Fatalf("empty pool drain: %+v, %v", stats, err)
	}
}

func TestPoolWorkerNaming(t *testing.T) {
	pool := NewPool(5, nil,
		Spec{Count: 2, Model: Perfect{}, Prefix: "expert"},
		Spec{Count: 1, Model: Spammer{}},
	)
	if len(pool.Workers) != 3 {
		t.Fatalf("pool size %d", len(pool.Workers))
	}
	if pool.Workers[0].ID != "expert-0" || pool.Workers[1].ID != "expert-1" {
		t.Fatalf("prefix naming: %s, %s", pool.Workers[0].ID, pool.Workers[1].ID)
	}
	if pool.Workers[2].ID != "spammer-0" {
		t.Fatalf("default naming: %s", pool.Workers[2].ID)
	}
}

// TestQuickUniformNeverInventsAnswers: whatever the seed, a Uniform worker
// answers something from the option list.
func TestQuickUniformNeverInventsAnswers(t *testing.T) {
	f := func(seed int64, p float64, truthIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := []string{"a", "b", "c", "d"}
		truth := opts[int(truthIdx)%len(opts)]
		m := Uniform{P: p - float64(int(p))} // fold into [0,1)
		got := m.Answer(rng, truth, opts)
		for _, o := range opts {
			if got == o {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDrainAnswersBounded: for any redundancy r and worker count w,
// answers per task = min(r, w).
func TestQuickDrainAnswersBounded(t *testing.T) {
	f := func(rRaw, wRaw uint8) bool {
		r := int(rRaw)%5 + 1
		w := int(wRaw)%5 + 1
		clock := vclock.NewVirtual()
		engine := platform.NewEngine(clock)
		p, _ := engine.EnsureProject(platform.ProjectSpec{Name: "q", Redundancy: r})
		engine.AddTasks(p.ID, []platform.TaskSpec{
			{ExternalID: "t0", Payload: map[string]string{"truth": "yes"}},
			{ExternalID: "t1", Payload: map[string]string{"truth": "no"}},
		})
		pool := NewPool(7, clock, Spec{Count: w, Model: Perfect{}})
		stats, err := pool.Drain(engine, p.ID, labelOracle)
		if err != nil {
			return false
		}
		want := 2 * min(r, w)
		return stats.Answers == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDrainWorkerQuota(t *testing.T) {
	clock := vclock.NewVirtual()
	engine := platform.NewEngine(clock)
	p := newProject(t, engine, 1, 10)
	// 2 workers capped at 3 tasks each: only 6 of the 10 tasks get done.
	pool := NewPool(5, clock, Spec{Count: 2, Model: Perfect{}, MaxTasks: 3})
	stats, err := pool.Drain(engine, p.ID, labelOracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Answers != 6 {
		t.Fatalf("answers = %d, want 6 (2 workers x quota 3)", stats.Answers)
	}
	for w, n := range stats.PerWorker {
		if n > 3 {
			t.Fatalf("worker %s exceeded quota: %d", w, n)
		}
	}
	// A second drain with fresh quota finishes the remainder.
	pool2 := NewPool(6, clock, Spec{Count: 2, Model: Perfect{}, MaxTasks: 2, Prefix: "late"})
	stats2, err := pool2.Drain(engine, p.ID, labelOracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Answers+stats2.Answers != 10 {
		t.Fatalf("total answers = %d, want 10", stats.Answers+stats2.Answers)
	}
}

func TestDrainSkipsBannedWorkers(t *testing.T) {
	clock := vclock.NewVirtual()
	engine := platform.NewEngine(clock)
	p := newProject(t, engine, 1, 4)
	pool := NewPool(5, clock, Spec{Count: 2, Model: Perfect{}, Prefix: "w"})
	if err := engine.BanWorker(p.ID, "w-0"); err != nil {
		t.Fatal(err)
	}
	stats, err := pool.Drain(engine, p.ID, labelOracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerWorker["w-0"] != 0 {
		t.Fatalf("banned worker answered %d tasks", stats.PerWorker["w-0"])
	}
	if stats.PerWorker["w-1"] != 4 {
		t.Fatalf("remaining worker answered %d tasks, want 4", stats.PerWorker["w-1"])
	}
}

// TestDrainDropoutReclaim is the lease-TTL acceptance test for the
// dropout model: workers that request tasks and vanish leave leases
// behind, and the remaining (patient) workers must wait out the TTL, get
// the reclaimed slots, and still finish every task.
func TestDrainDropoutReclaim(t *testing.T) {
	clock := vclock.NewVirtual()
	engine, err := platform.NewEngineOpts(platform.EngineOptions{
		Clock:    clock,
		LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := newProject(t, engine, 1, 6)
	// 3 certain dropouts grab leases and vanish; 2 reliable workers must
	// reclaim those slots after the one-minute TTL.
	pool := NewPool(42, clock,
		Spec{Count: 3, Model: Perfect{}, Prefix: "ghost", Dropout: 1},
		Spec{Count: 2, Model: Perfect{}, Prefix: "solid"},
	)
	stats, err := pool.Drain(engine, p.ID, labelOracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropouts != 3 {
		t.Fatalf("dropouts = %d, want 3 (one per ghost)", stats.Dropouts)
	}
	for w, n := range stats.PerWorker {
		if n > 0 && w[:5] == "ghost" {
			t.Fatalf("dropout worker %s submitted %d answers", w, n)
		}
	}
	if stats.Answers != 6 {
		t.Fatalf("answers = %d, want 6 (all tasks finished after reclaim)", stats.Answers)
	}
	st, _ := engine.Stats(p.ID)
	if st.CompletedTasks != 6 {
		t.Fatalf("completed = %d, want 6", st.CompletedTasks)
	}
	// Reclaim really was needed: the drain had to outlive the lease TTL.
	if stats.SimulatedWall < time.Minute {
		t.Fatalf("drain finished in %v, before any lease could expire", stats.SimulatedWall)
	}
	qs, err := engine.QueueStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if qs.PendingTasks != 0 || qs.ActiveLeases != 0 || qs.AnsweredEntries != 0 {
		t.Fatalf("drain left scheduler state behind: %+v", qs)
	}
}

// TestDrainDropoutDeterministic: the dropout path (including retry
// scheduling) stays reproducible from the seed.
func TestDrainDropoutDeterministic(t *testing.T) {
	run := func() string {
		clock := vclock.NewVirtual()
		engine, err := platform.NewEngineOpts(platform.EngineOptions{
			Clock:    clock,
			LeaseTTL: 2 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := newProject(t, engine, 2, 8)
		pool := NewPool(7, clock,
			Spec{Count: 4, Model: Uniform{P: 0.8}, Prefix: "flaky", Dropout: 0.3},
			Spec{Count: 2, Model: Perfect{}, Prefix: "solid"},
		)
		stats, err := pool.Drain(engine, p.ID, labelOracle)
		if err != nil {
			t.Fatal(err)
		}
		out := fmt.Sprintf("answers=%d dropouts=%d;", stats.Answers, stats.Dropouts)
		tasks, _ := engine.Tasks(p.ID)
		for _, task := range tasks {
			runs, _ := engine.Runs(task.ID)
			for _, r := range runs {
				out += fmt.Sprintf("%d:%s=%s@%s;", task.ID, r.WorkerID, r.Answer, r.Finished)
			}
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("dropout drain not deterministic:\n%s\n%s", a, b)
	}
}

// TestDrainUnderShortLeaseTTL drains against the sched subsystem's lease
// semantics with a TTL shorter than every worker's think time: each lease
// is technically past its deadline by the time the answer arrives, but an
// unreclaimed lease still dates and accepts the submission, so nothing is
// lost and no scheduler state lingers after the drain.
func TestDrainUnderShortLeaseTTL(t *testing.T) {
	clock := vclock.NewVirtual()
	engine, err := platform.NewEngineOpts(platform.EngineOptions{
		Clock:    clock,
		LeaseTTL: 5 * time.Second, // workers think for a fixed 30s
	})
	if err != nil {
		t.Fatal(err)
	}
	p := newProject(t, engine, 3, 10)
	pool := NewPool(42, clock, Spec{Count: 5, Model: Perfect{}, Prefix: "w"})

	stats, err := pool.Drain(engine, p.ID, labelOracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Answers != 30 {
		t.Fatalf("answers = %d, want 30 (10 tasks × r=3)", stats.Answers)
	}
	st, _ := engine.Stats(p.ID)
	if st.CompletedTasks != 10 {
		t.Fatalf("completed = %d, want 10", st.CompletedTasks)
	}
	// Runs whose worker thought for the full 30s lease out the task far
	// past the 5s TTL; the expired-but-unreclaimed lease must still date
	// the answer at its assignment instant. (Drain's sequential event
	// loop submits most answers one tick after requesting, so only the
	// round-leading workers show the full gap.)
	longGaps := 0
	tasks, _ := engine.Tasks(p.ID)
	for _, task := range tasks {
		runs, _ := engine.Runs(task.ID)
		for _, r := range runs {
			if r.Finished.Before(r.Assigned) {
				t.Fatalf("run %d finished %v before assigned %v", r.ID, r.Finished, r.Assigned)
			}
			if r.Finished.Sub(r.Assigned) >= 29*time.Second {
				longGaps++
			}
		}
	}
	if longGaps == 0 {
		t.Fatal("no run outlived the 5s lease TTL; expired-lease dating untested")
	}
	qs, err := engine.QueueStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if qs.PendingTasks != 0 || qs.ActiveLeases != 0 || qs.AnsweredEntries != 0 {
		t.Fatalf("drain left scheduler state behind: %+v", qs)
	}
}

// TestDrainReturnDelayReconnect: abandon-and-return workers come back
// within the lease TTL, reconnect to the task they abandoned (the lease
// is still theirs) and finish it — so a pool of returners completes the
// project without any TTL reclaim.
func TestDrainReturnDelayReconnect(t *testing.T) {
	clock := vclock.NewVirtual()
	engine, err := platform.NewEngineOpts(platform.EngineOptions{
		Clock:    clock,
		LeaseTTL: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := newProject(t, engine, 1, 6)
	pool := NewPool(42, clock,
		Spec{Count: 3, Model: Perfect{}, Prefix: "returner", Dropout: 0.5, ReturnDelay: time.Minute},
	)
	stats, err := pool.Drain(engine, p.ID, labelOracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropouts == 0 || stats.Returns == 0 {
		t.Fatalf("drain exercised no churn: %+v", stats)
	}
	if stats.Returns > stats.Dropouts {
		t.Fatalf("returns %d exceed dropouts %d", stats.Returns, stats.Dropouts)
	}
	if stats.Answers != 6 {
		t.Fatalf("answers = %d, want 6", stats.Answers)
	}
	st, _ := engine.Stats(p.ID)
	if st.CompletedTasks != 6 {
		t.Fatalf("completed = %d, want 6", st.CompletedTasks)
	}
	// The proof this rode the reconnect path, not TTL reclaim: every
	// abandoned lease was still live (TTL 10m, returns after 1m) when its
	// worker came back, yet nothing was stranded.
	if stats.SimulatedWall >= 10*time.Minute {
		t.Fatalf("drain took %v — leases expired, so reclaim (not reconnect) finished it", stats.SimulatedWall)
	}
	qs, err := engine.QueueStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if qs.PendingTasks != 0 || qs.ActiveLeases != 0 {
		t.Fatalf("drain left scheduler state behind: %+v", qs)
	}
}

// TestDrainReturnDelayDeterministic: the return path stays reproducible
// from the seed.
func TestDrainReturnDelayDeterministic(t *testing.T) {
	run := func() string {
		clock := vclock.NewVirtual()
		engine, err := platform.NewEngineOpts(platform.EngineOptions{
			Clock:    clock,
			LeaseTTL: 2 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := newProject(t, engine, 2, 8)
		pool := NewPool(7, clock,
			Spec{Count: 4, Model: Uniform{P: 0.8}, Prefix: "flaky", Dropout: 0.3, ReturnDelay: 45 * time.Second},
			Spec{Count: 2, Model: Perfect{}, Prefix: "solid"},
		)
		stats, err := pool.Drain(engine, p.ID, labelOracle)
		if err != nil {
			t.Fatal(err)
		}
		out := fmt.Sprintf("answers=%d dropouts=%d returns=%d;", stats.Answers, stats.Dropouts, stats.Returns)
		tasks, _ := engine.Tasks(p.ID)
		for _, task := range tasks {
			runs, _ := engine.Runs(task.ID)
			for _, r := range runs {
				out += fmt.Sprintf("%d:%s=%s@%s;", task.ID, r.WorkerID, r.Answer, r.Finished)
			}
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("return-delay drain not deterministic:\n%s\n%s", a, b)
	}
}

// TestDrainCertainDropoutWithReturnTerminates: a worker who always
// abandons but always returns must not loop forever — re-entries are
// capped, the lease eventually expires, and a reliable worker reclaims
// the tasks.
func TestDrainCertainDropoutWithReturnTerminates(t *testing.T) {
	clock := vclock.NewVirtual()
	engine, err := platform.NewEngineOpts(platform.EngineOptions{
		Clock:    clock,
		LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := newProject(t, engine, 1, 3)
	pool := NewPool(3, clock,
		Spec{Count: 1, Model: Perfect{}, Prefix: "ghost", Dropout: 1, ReturnDelay: 90 * time.Second},
		Spec{Count: 1, Model: Perfect{}, Prefix: "solid"},
	)
	stats, err := pool.Drain(engine, p.ID, labelOracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Returns == 0 {
		t.Fatalf("ghost never returned: %+v", stats)
	}
	if stats.Returns > maxIdleRetries {
		t.Fatalf("returns %d exceed the re-entry cap %d", stats.Returns, maxIdleRetries)
	}
	st, _ := engine.Stats(p.ID)
	if st.CompletedTasks != 3 {
		t.Fatalf("completed = %d, want 3", st.CompletedTasks)
	}
	if n := stats.PerWorker["ghost-0"]; n != 0 {
		t.Fatalf("certain dropout submitted %d answers", n)
	}
}
