// Package crowd simulates the human workers Reprowd collects answers from.
//
// The paper's system published tasks to PyBossa and waited for real people.
// This package substitutes a deterministic simulation: a Pool of workers,
// each with an accuracy model (how often and how they err against hidden
// ground truth) and a latency model (how long an answer takes in simulated
// time), drains a platform project exactly the way a live crowd would —
// asynchronously, with redundancy, with disagreement — but reproducibly
// from a single seed.
package crowd

import (
	"fmt"
	"math/rand"
	"time"
)

// Oracle supplies the hidden ground truth for a task. Simulated workers
// consult it (through their error models); the system under test never does.
type Oracle interface {
	// Truth returns the correct answer for a task payload.
	Truth(payload map[string]string) string
	// Options returns the answer alternatives a worker chooses among.
	Options(payload map[string]string) []string
}

// FuncOracle adapts plain functions to the Oracle interface.
type FuncOracle struct {
	TruthFunc   func(payload map[string]string) string
	OptionsFunc func(payload map[string]string) []string
}

// Truth implements Oracle.
func (o FuncOracle) Truth(p map[string]string) string { return o.TruthFunc(p) }

// Options implements Oracle.
func (o FuncOracle) Options(p map[string]string) []string { return o.OptionsFunc(p) }

// AnswerModel decides what a worker answers given the truth and the
// alternatives. Implementations must be pure functions of (rng, truth,
// options) so that simulations are reproducible.
type AnswerModel interface {
	// Answer returns the worker's answer.
	Answer(rng *rand.Rand, truth string, options []string) string
	// Name identifies the model in lineage and experiment reports.
	Name() string
}

// Perfect always answers correctly.
type Perfect struct{}

// Answer implements AnswerModel.
func (Perfect) Answer(_ *rand.Rand, truth string, _ []string) string { return truth }

// Name implements AnswerModel.
func (Perfect) Name() string { return "perfect" }

// Uniform answers correctly with probability P and otherwise picks
// uniformly among the wrong options. This is the standard "p-coin" worker
// of the crowdsourcing literature.
type Uniform struct {
	P float64
}

// Answer implements AnswerModel.
func (m Uniform) Answer(rng *rand.Rand, truth string, options []string) string {
	if rng.Float64() < m.P {
		return truth
	}
	wrong := make([]string, 0, len(options))
	for _, o := range options {
		if o != truth {
			wrong = append(wrong, o)
		}
	}
	if len(wrong) == 0 {
		return truth
	}
	return wrong[rng.Intn(len(wrong))]
}

// Name implements AnswerModel.
func (m Uniform) Name() string { return fmt.Sprintf("uniform(%.2f)", m.P) }

// TwoCoin models asymmetric binary workers: they recognize true Positive
// instances with probability TPR and true negatives with probability TNR.
// Entity-resolution crowds are typically much better at rejecting clear
// non-matches than at confirming hard matches, which this captures.
type TwoCoin struct {
	Positive string
	Negative string
	TPR      float64
	TNR      float64
}

// Answer implements AnswerModel.
func (m TwoCoin) Answer(rng *rand.Rand, truth string, _ []string) string {
	if truth == m.Positive {
		if rng.Float64() < m.TPR {
			return m.Positive
		}
		return m.Negative
	}
	if rng.Float64() < m.TNR {
		return m.Negative
	}
	return m.Positive
}

// Name implements AnswerModel.
func (m TwoCoin) Name() string { return fmt.Sprintf("twocoin(%.2f/%.2f)", m.TPR, m.TNR) }

// Spammer answers uniformly at random, ignoring the task entirely.
type Spammer struct{}

// Answer implements AnswerModel.
func (Spammer) Answer(rng *rand.Rand, _ string, options []string) string {
	if len(options) == 0 {
		return ""
	}
	return options[rng.Intn(len(options))]
}

// Name implements AnswerModel.
func (Spammer) Name() string { return "spammer" }

// Adversary always answers incorrectly (the first wrong option).
type Adversary struct{}

// Answer implements AnswerModel.
func (Adversary) Answer(_ *rand.Rand, truth string, options []string) string {
	for _, o := range options {
		if o != truth {
			return o
		}
	}
	return truth
}

// Name implements AnswerModel.
func (Adversary) Name() string { return "adversary" }

// Confusion samples the answer from a per-truth categorical distribution:
// Rows[truth] maps each answer option to its probability. Missing rows fall
// back to answering the truth.
type Confusion struct {
	Rows map[string]map[string]float64
}

// Answer implements AnswerModel.
func (m Confusion) Answer(rng *rand.Rand, truth string, options []string) string {
	row, ok := m.Rows[truth]
	if !ok {
		return truth
	}
	u := rng.Float64()
	acc := 0.0
	// Iterate options (not the map) for deterministic order.
	for _, o := range options {
		acc += row[o]
		if u < acc {
			return o
		}
	}
	return truth
}

// Name implements AnswerModel.
func (m Confusion) Name() string { return "confusion" }

// LatencyModel draws the simulated time a worker spends on one task.
type LatencyModel interface {
	// Draw returns the time the next task takes.
	Draw(rng *rand.Rand) time.Duration
	// Name identifies the model.
	Name() string
}

// FixedLatency always takes D.
type FixedLatency struct {
	D time.Duration
}

// Draw implements LatencyModel.
func (m FixedLatency) Draw(_ *rand.Rand) time.Duration { return m.D }

// Name implements LatencyModel.
func (m FixedLatency) Name() string { return fmt.Sprintf("fixed(%s)", m.D) }

// UniformLatency draws uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Draw implements LatencyModel.
func (m UniformLatency) Draw(rng *rand.Rand) time.Duration {
	if m.Max <= m.Min {
		return m.Min
	}
	return m.Min + time.Duration(rng.Int63n(int64(m.Max-m.Min)))
}

// Name implements LatencyModel.
func (m UniformLatency) Name() string { return fmt.Sprintf("uniform(%s,%s)", m.Min, m.Max) }

// ExpLatency draws exponentially with the given Mean — the heavy-ish tail
// seen in real task-completion times.
type ExpLatency struct {
	Mean time.Duration
}

// Draw implements LatencyModel.
func (m ExpLatency) Draw(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(m.Mean))
}

// Name implements LatencyModel.
func (m ExpLatency) Name() string { return fmt.Sprintf("exp(%s)", m.Mean) }
