// Package sched is the platform's task-scheduling subsystem.
//
// The original Reprowd delegated assignment to PyBossa's scheduler; the
// seed of this reproduction inlined a toy version of it — a linear scan
// over every task of a project on each request, under one global mutex,
// with leases that never expired. This package replaces that with a real
// scheduler:
//
//   - Each project owns an indexed priority queue (container/heap) ordered
//     by the project's strategy (breadth- or depth-first on answer count),
//     then priority (higher first), then task id (lower first) — the same
//     deterministic tie-break the engine always had, but Acquire is now
//     O(log n) instead of O(n).
//   - Projects are striped across shards by hashing the project id, so
//     concurrent workers on different projects never contend on the same
//     mutex.
//   - Assignments are leases with a TTL drawn from the injected
//     vclock.Clock. A worker holding a live lease can reconnect and get
//     the same task back; leases past their deadline are reclaimed lazily
//     so the slot becomes assignable again. Outstanding live leases count
//     toward a task's redundancy, so a task is never handed to more
//     workers than it still needs answers from.
//   - When a task reaches its redundancy it is retired: removed from the
//     heap and all its per-worker state (answered set, leases) is freed,
//     so scheduler memory tracks the open task set, not history.
//
// The scheduler deliberately knows nothing about the platform's data
// model — it deals in project ids, task ids, priorities and worker ids —
// so it can be tested and benchmarked in isolation and reused by other
// front ends.
//
// Concurrency model: a Scheduler is safe for concurrent use; each
// project lives on exactly one shard (chosen by the same Fibonacci hash
// platform.ShardKey exposes, which repl.Ring also partitions by), each
// shard has its own mutex, and no operation takes more than one shard
// lock — so throughput scales with distinct projects and two workers on
// different projects never contend.
package sched

import (
	"container/heap"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/vclock"
)

// Strategy selects how a project's queue orders candidate tasks.
type Strategy uint8

const (
	// BreadthFirst hands out the task with the fewest answers so far.
	BreadthFirst Strategy = iota
	// DepthFirst hands out the task closest to completion.
	DepthFirst
)

// Defaults used when Options fields are zero.
const (
	DefaultShards   = 16
	DefaultLeaseTTL = 10 * time.Minute
)

// Errors returned by the scheduler.
var (
	ErrUnknownProject = errors.New("sched: unknown project")
	ErrUnknownTask    = errors.New("sched: unknown or retired task")
	ErrNoTask         = errors.New("sched: no assignable task for this worker")
	ErrDuplicate      = errors.New("sched: worker already answered this task")
)

// Options configure New. The zero value is usable.
type Options struct {
	// Shards is the number of lock stripes projects are hashed across.
	// Defaults to DefaultShards.
	Shards int
	// LeaseTTL is how long an assignment stays live before it is
	// reclaimed. Defaults to DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Metrics, when non-nil, registers the scheduler's families (acquire
	// latency, lease reclaim counters). Nil disables instrumentation at
	// zero hot-path cost.
	Metrics *obs.Registry
}

// schedMetrics are the scheduler's instrumentation handles; all nil when
// metrics are off.
type schedMetrics struct {
	acquire    *obs.Histogram // Acquire wall time (assignment path)
	reclaimed  *obs.Counter   // expired leases reclaimed
	reclaimLag *obs.Histogram // deadline → reclaim delay, scheduler-clock relative
}

func newSchedMetrics(reg *obs.Registry) *schedMetrics {
	m := &schedMetrics{}
	if reg == nil {
		return m
	}
	m.acquire = reg.SampledHistogram("reprowd_sched_acquire_seconds",
		"Wall time of one task acquisition (heap scan + lease bookkeeping); 1-in-8 sampled.", nil, 8)
	m.reclaimed = reg.Counter("reprowd_sched_reclaimed_leases_total",
		"Expired leases reclaimed lazily by the scheduler.")
	m.reclaimLag = reg.Histogram("reprowd_sched_reclaim_lag_seconds",
		"How long past its deadline a lease sat before reclaim (scheduler clock).", nil)
	return m
}

// lease is one outstanding assignment.
type lease struct {
	at       time.Time // when the task was assigned (run.Assigned)
	deadline time.Time // when the lease may be reclaimed
}

// entry is one schedulable task inside a project queue.
type entry struct {
	id         int64
	priority   float64
	answers    int
	redundancy int
	index      int // position in the heap, maintained by taskHeap

	answered map[string]struct{} // workers who submitted an answer
	leases   map[string]lease    // worker → outstanding assignment
}

// taskHeap orders entries per the owning queue's strategy.
type taskHeap struct {
	entries  []*entry
	strategy Strategy
}

func (h *taskHeap) Len() int { return len(h.entries) }

func (h *taskHeap) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.answers != b.answers {
		if h.strategy == DepthFirst {
			return a.answers > b.answers
		}
		return a.answers < b.answers
	}
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.id < b.id
}

func (h *taskHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.entries[i].index = i
	h.entries[j].index = j
}

func (h *taskHeap) Push(x any) {
	e := x.(*entry)
	e.index = len(h.entries)
	h.entries = append(h.entries, e)
}

func (h *taskHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	h.entries = old[:n-1]
	e.index = -1
	return e
}

// queue is one project's scheduling state.
type queue struct {
	heap taskHeap
	byID map[int64]*entry
	// leased indexes each worker's outstanding lease (at most one per
	// project): a reconnecting worker is handed its leased task back
	// instead of accumulating leases across tasks.
	leased map[string]*entry
	m      *schedMetrics // owning scheduler's handles (never nil)
}

// reap reclaims e's expired leases, dropping their index entries too.
func (q *queue) reap(e *entry, now time.Time) {
	for w, l := range e.leases {
		if !l.deadline.After(now) {
			delete(e.leases, w)
			if q.leased[w] == e {
				delete(q.leased, w)
			}
			q.m.reclaimed.Inc()
			q.m.reclaimLag.Observe(now.Sub(l.deadline).Seconds())
		}
	}
}

// dropLease removes worker's lease on e, if any, with its index entry.
func (q *queue) dropLease(e *entry, workerID string) {
	delete(e.leases, workerID)
	if q.leased[workerID] == e {
		delete(q.leased, workerID)
	}
}

// shard is one lock stripe of the scheduler.
type shard struct {
	mu       sync.Mutex
	projects map[int64]*queue
}

// Scheduler assigns tasks to workers. It is safe for concurrent use.
type Scheduler struct {
	clock    vclock.Clock
	leaseTTL time.Duration
	shards   []*shard
	m        *schedMetrics
}

// New returns an empty scheduler. A nil clock defaults to a virtual clock.
func New(clock vclock.Clock, opts Options) *Scheduler {
	if clock == nil {
		clock = vclock.NewVirtual()
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	s := &Scheduler{
		clock:    clock,
		leaseTTL: opts.LeaseTTL,
		shards:   make([]*shard, opts.Shards),
		m:        newSchedMetrics(opts.Metrics),
	}
	for i := range s.shards {
		s.shards[i] = &shard{projects: make(map[int64]*queue)}
	}
	return s
}

// LeaseTTL returns the configured lease lifetime.
func (s *Scheduler) LeaseTTL() time.Duration { return s.leaseTTL }

// shardFor hashes a project id onto its lock stripe
// (Fibonacci/multiplicative hashing; ids are small and sequential, which
// a plain modulo would stripe fine too, but this stays uniform for any
// id scheme).
func (s *Scheduler) shardFor(projectID int64) *shard {
	h := uint64(projectID) * 0x9E3779B97F4A7C15
	return s.shards[h%uint64(len(s.shards))]
}

// AddProject registers a project queue. Re-adding an existing project is a
// no-op that keeps the original strategy.
func (s *Scheduler) AddProject(projectID int64, strategy Strategy) {
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.projects[projectID]; ok {
		return
	}
	sh.projects[projectID] = &queue{
		heap:   taskHeap{strategy: strategy},
		byID:   make(map[int64]*entry),
		leased: make(map[string]*entry),
		m:      s.m,
	}
}

// AddTask makes a task schedulable. Redundancy must be ≥ 1. Re-adding a
// task id already in the queue is a no-op.
func (s *Scheduler) AddTask(projectID, taskID int64, priority float64, redundancy int) error {
	if redundancy < 1 {
		redundancy = 1
	}
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q, ok := sh.projects[projectID]
	if !ok {
		return ErrUnknownProject
	}
	if _, dup := q.byID[taskID]; dup {
		return nil
	}
	e := &entry{id: taskID, priority: priority, redundancy: redundancy}
	q.byID[taskID] = e
	heap.Push(&q.heap, e)
	return nil
}

// Acquire assigns the best eligible task to worker and records a lease on
// it. A worker already holding a live lease in the project is handed that
// task back with the lease renewed (reconnect semantics; a worker holds
// at most one lease per project). Otherwise a task is eligible when the
// worker has not answered it and it still has a free slot (answers + live
// leases < redundancy). Returns the task id and the assignment time
// stamped on the lease.
//
// The clock is consulted lazily — a request that never touches a leased
// task (the common case in a drain loop, where leases are cleared on
// submit) does not tick a virtual clock on failure, keeping timestamp
// sequences identical to the pre-sched engine.
func (s *Scheduler) Acquire(projectID int64, workerID string) (int64, time.Time, error) {
	start := s.m.acquire.Start()
	defer s.m.acquire.Stop(start)
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q, ok := sh.projects[projectID]
	if !ok {
		return 0, time.Time{}, ErrUnknownProject
	}

	var (
		now     time.Time
		haveNow bool
	)
	clockNow := func() time.Time {
		if !haveNow {
			now = s.clock.Now()
			haveNow = true
		}
		return now
	}

	// Reconnect: hand the worker its outstanding lease back, renewed,
	// keeping the original assignment time. An expired lease is
	// reclaimed here and the worker falls through to a fresh scan.
	if ent, ok := q.leased[workerID]; ok {
		if l, held := ent.leases[workerID]; held && l.deadline.After(clockNow()) {
			ent.leases[workerID] = lease{at: l.at, deadline: clockNow().Add(s.leaseTTL)}
			return ent.id, l.at, nil
		}
		if l, held := ent.leases[workerID]; held {
			s.m.reclaimed.Inc()
			s.m.reclaimLag.Observe(clockNow().Sub(l.deadline).Seconds())
		}
		q.dropLease(ent, workerID)
	}

	// Pop until the root is eligible for this worker, then restore the
	// skipped prefix. Skips are tasks this worker answered or tasks with
	// all slots leased out, so the loop is short in practice; the common
	// case returns the root in O(log n).
	var skipped []*entry
	var found *entry
	for q.heap.Len() > 0 {
		e := q.heap.entries[0]
		if eligibleLocked(q, e, workerID, clockNow) {
			found = e
			break
		}
		skipped = append(skipped, heap.Pop(&q.heap).(*entry))
	}
	for _, e := range skipped {
		heap.Push(&q.heap, e)
	}
	if found == nil {
		return 0, time.Time{}, ErrNoTask
	}
	at := clockNow()
	if found.leases == nil {
		found.leases = make(map[string]lease)
	}
	found.leases[workerID] = lease{at: at, deadline: at.Add(s.leaseTTL)}
	q.leased[workerID] = found
	return found.id, at, nil
}

// eligibleLocked reports whether e can be assigned to worker, reclaiming
// any expired leases it holds along the way. The worker is known to hold
// no lease in the project (Acquire's reconnect path handled that).
// Callers hold the shard lock.
func eligibleLocked(q *queue, e *entry, workerID string, clockNow func() time.Time) bool {
	if _, done := e.answered[workerID]; done {
		return false
	}
	if len(e.leases) == 0 {
		return true
	}
	q.reap(e, clockNow())
	return e.answers+len(e.leases) < e.redundancy
}

// CompleteResult describes the effect of a Complete call.
type CompleteResult struct {
	// Answers is the task's answer count after this completion.
	Answers int
	// Retired reports whether the task reached its redundancy and was
	// removed from the queue.
	Retired bool
	// AssignedAt is when the completing worker was assigned the task: the
	// lease timestamp if the worker held one, else the completion time.
	AssignedAt time.Time
}

// Preview reports what Complete would return for (task, worker) without
// mutating anything — same validation, same result. Callers that journal
// outcomes before committing them (platform.Engine.Submit) use it to
// write the log entry first; the preview stays accurate as long as no
// other Complete for the task intervenes (the engine serializes
// completions under its registry lock).
func (s *Scheduler) Preview(projectID, taskID int64, workerID string, now func() time.Time) (CompleteResult, error) {
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q, ok := sh.projects[projectID]
	if !ok {
		return CompleteResult{}, ErrUnknownProject
	}
	e, ok := q.byID[taskID]
	if !ok {
		return CompleteResult{}, ErrUnknownTask
	}
	if _, done := e.answered[workerID]; done {
		return CompleteResult{}, ErrDuplicate
	}
	res := CompleteResult{AssignedAt: now()}
	if l, held := e.leases[workerID]; held {
		res.AssignedAt = l.at
	}
	res.Answers = e.answers + 1
	res.Retired = res.Answers >= e.redundancy
	return res, nil
}

// Complete records worker's answer on a task: the worker's lease (if any)
// is consumed, the answer count rises, the task's queue position is fixed
// up, and a task that reached its redundancy is retired with all its
// per-worker state freed. The completion time is taken from now(), which
// is only invoked after validation passes so failed completions never
// tick a virtual clock; callers typically pass a memoized clock closure
// and reuse the same timestamp for their own records.
func (s *Scheduler) Complete(projectID, taskID int64, workerID string, now func() time.Time) (CompleteResult, error) {
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q, ok := sh.projects[projectID]
	if !ok {
		return CompleteResult{}, ErrUnknownProject
	}
	e, ok := q.byID[taskID]
	if !ok {
		return CompleteResult{}, ErrUnknownTask
	}
	if _, done := e.answered[workerID]; done {
		return CompleteResult{}, ErrDuplicate
	}

	t := now()
	res := CompleteResult{AssignedAt: t}
	if l, held := e.leases[workerID]; held {
		// Even a lease past its deadline wins if it has not been
		// reclaimed yet: the worker did start the task at l.at.
		res.AssignedAt = l.at
		q.dropLease(e, workerID)
	}
	e.answers++
	res.Answers = e.answers
	if e.answers >= e.redundancy {
		heap.Remove(&q.heap, e.index)
		delete(q.byID, taskID)
		// Drop per-worker state with the entry so retired tasks cost the
		// scheduler nothing (the seed engine leaked leases here).
		for w := range e.leases {
			if q.leased[w] == e {
				delete(q.leased, w)
			}
		}
		e.answered = nil
		e.leases = nil
		res.Retired = true
		return res, nil
	}
	if e.answered == nil {
		e.answered = make(map[string]struct{})
	}
	e.answered[workerID] = struct{}{}
	heap.Fix(&q.heap, e.index)
	return res, nil
}

// Release drops worker's lease on a task without recording an answer —
// an explicit abandon, the eager version of TTL reclaim. Unknown
// projects, retired tasks and absent leases are no-ops.
func (s *Scheduler) Release(projectID, taskID int64, workerID string) {
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q, ok := sh.projects[projectID]
	if !ok {
		return
	}
	if e, ok := q.byID[taskID]; ok {
		q.dropLease(e, workerID)
	}
}

// QueueStats is a point-in-time summary of one project's queue.
type QueueStats struct {
	// PendingTasks is the number of unretired tasks in the queue.
	PendingTasks int `json:"pending_tasks"`
	// ActiveLeases counts outstanding leases across pending tasks
	// (including any not yet reclaimed past their deadline).
	ActiveLeases int `json:"active_leases"`
	// AnsweredEntries counts (task, worker) answer marks still held for
	// pending tasks. Retired tasks contribute nothing.
	AnsweredEntries int `json:"answered_entries"`
}

// Stats summarizes a project's queue.
func (s *Scheduler) Stats(projectID int64) (QueueStats, error) {
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q, ok := sh.projects[projectID]
	if !ok {
		return QueueStats{}, ErrUnknownProject
	}
	st := QueueStats{PendingTasks: len(q.byID)}
	for _, e := range q.byID {
		st.ActiveLeases += len(e.leases)
		st.AnsweredEntries += len(e.answered)
	}
	return st, nil
}
