package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vclock"
)

// TestConcurrentAcquireComplete hammers one scheduler from many goroutines
// across several projects (run under -race). Invariants checked:
// every task collects exactly its redundancy of answers, no worker answers
// a task twice, and the scheduler ends empty.
func TestConcurrentAcquireComplete(t *testing.T) {
	const (
		projects   = 8
		tasksPer   = 50
		redundancy = 3
		workers    = 12
	)
	clock := vclock.NewWall()
	s := New(clock, Options{Shards: 4, LeaseTTL: time.Hour})
	for p := int64(1); p <= projects; p++ {
		s.AddProject(p, BreadthFirst)
		for i := int64(0); i < tasksPer; i++ {
			if err := s.AddTask(p, p*1000+i, 0, redundancy); err != nil {
				t.Fatal(err)
			}
		}
	}

	var (
		mu      sync.Mutex
		answers = make(map[int64]map[string]bool) // task → workers
		retired atomic.Int64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := fmt.Sprintf("w%d", w)
			for p := int64(1); p <= projects; p++ {
				for {
					id, _, err := s.Acquire(p, worker)
					if errors.Is(err, ErrNoTask) {
						break
					}
					if err != nil {
						t.Errorf("Acquire: %v", err)
						return
					}
					res, err := s.Complete(p, id, worker, clock.Now)
					if errors.Is(err, ErrDuplicate) || errors.Is(err, ErrUnknownTask) {
						// Lost a race to other workers; move on.
						continue
					}
					if err != nil {
						t.Errorf("Complete: %v", err)
						return
					}
					mu.Lock()
					if answers[id] == nil {
						answers[id] = make(map[string]bool)
					}
					if answers[id][worker] {
						t.Errorf("worker %s answered task %d twice", worker, id)
					}
					answers[id][worker] = true
					mu.Unlock()
					if res.Retired {
						retired.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got, want := retired.Load(), int64(projects*tasksPer); got != want {
		t.Fatalf("retired %d tasks, want %d", got, want)
	}
	for id, ws := range answers {
		if len(ws) != redundancy {
			t.Errorf("task %d got %d answers, want %d", id, len(ws), redundancy)
		}
	}
	for p := int64(1); p <= projects; p++ {
		st, err := s.Stats(p)
		if err != nil {
			t.Fatal(err)
		}
		if st != (QueueStats{}) {
			t.Errorf("project %d not fully drained: %+v", p, st)
		}
	}
}

// TestConcurrentAddAndAcquire races task publication against assignment.
func TestConcurrentAddAndAcquire(t *testing.T) {
	clock := vclock.NewWall()
	s := New(clock, Options{LeaseTTL: time.Hour})
	s.AddProject(1, DepthFirst)

	const total = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < total; i++ {
			if err := s.AddTask(1, i+1, float64(i%7), 1); err != nil {
				t.Errorf("AddTask: %v", err)
				return
			}
		}
	}()
	var got atomic.Int64
	go func() {
		defer wg.Done()
		for got.Load() < total {
			id, _, err := s.Acquire(1, "solo")
			if errors.Is(err, ErrNoTask) {
				continue // publisher not done yet
			}
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			if _, err := s.Complete(1, id, "solo", clock.Now); err != nil {
				t.Errorf("Complete: %v", err)
				return
			}
			got.Add(1)
		}
	}()
	wg.Wait()
	st, _ := s.Stats(1)
	if st.PendingTasks != 0 {
		t.Fatalf("left %d pending tasks", st.PendingTasks)
	}
}
