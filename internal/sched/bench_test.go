package sched

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/vclock"
)

// The scan→heap claim: at 10k+ open tasks the heap scheduler must beat the
// seed engine's per-request linear scan. BenchmarkAcquire_LinearScan10k
// reproduces the seed's scan (the old Engine.RequestTask loop body) over
// the same workload so the two are directly comparable:
//
//	go test -bench 'Acquire.*10k' ./internal/sched/

func benchScheduler(nTasks int) (*Scheduler, *vclock.Virtual) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{LeaseTTL: time.Hour})
	s.AddProject(1, BreadthFirst)
	for i := 0; i < nTasks; i++ {
		s.AddTask(1, int64(i+1), float64(i%5), 1<<30) // effectively never retires
	}
	return s, clock
}

func benchmarkAcquire(b *testing.B, nTasks int) {
	s, _ := benchScheduler(nTasks)
	workers := make([]string, 100)
	for i := range workers {
		workers[i] = fmt.Sprintf("w-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := workers[i%len(workers)]
		id, _, err := s.Acquire(1, w)
		if err != nil {
			b.Fatal(err)
		}
		// Release so the next iteration exercises the heap assignment
		// path rather than the O(1) lease-reconnect fast path.
		s.Release(1, id, w)
	}
}

func BenchmarkAcquire_Heap1k(b *testing.B)  { benchmarkAcquire(b, 1_000) }
func BenchmarkAcquire_Heap10k(b *testing.B) { benchmarkAcquire(b, 10_000) }
func BenchmarkAcquire_Heap50k(b *testing.B) { benchmarkAcquire(b, 50_000) }

// scanTask mirrors the fields the seed engine's linear scan consulted.
type scanTask struct {
	id       int64
	priority float64
	answers  int
}

// benchmarkLinearScan is the seed's RequestTask inner loop: visit every
// task of the project, keep the best per (answers, priority, id).
func benchmarkLinearScan(b *testing.B, nTasks int) {
	tasks := make([]*scanTask, nTasks)
	for i := range tasks {
		tasks[i] = &scanTask{id: int64(i + 1), priority: float64(i % 5)}
	}
	better := func(a, t *scanTask) bool {
		if a.answers != t.answers {
			return a.answers < t.answers
		}
		if a.priority != t.priority {
			return a.priority > t.priority
		}
		return a.id < t.id
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var best *scanTask
		for _, t := range tasks {
			if best == nil || better(t, best) {
				best = t
			}
		}
		if best == nil {
			b.Fatal("no task")
		}
	}
}

func BenchmarkAcquire_LinearScan1k(b *testing.B)  { benchmarkLinearScan(b, 1_000) }
func BenchmarkAcquire_LinearScan10k(b *testing.B) { benchmarkLinearScan(b, 10_000) }
func BenchmarkAcquire_LinearScan50k(b *testing.B) { benchmarkLinearScan(b, 50_000) }

// BenchmarkLifecycle10k measures a full add→acquire→complete sweep that
// actually drains the queue, exercising heap fix-up and retirement.
func BenchmarkLifecycle10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clock := vclock.NewVirtual()
		s := New(clock, Options{LeaseTTL: time.Hour})
		s.AddProject(1, BreadthFirst)
		for t := int64(1); t <= 10_000; t++ {
			s.AddTask(1, t, 0, 1)
		}
		b.StartTimer()
		for t := 0; t < 10_000; t++ {
			id, _, err := s.Acquire(1, "w")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Complete(1, id, "w", clock.Now); err != nil {
				b.Fatal(err)
			}
		}
	}
}
