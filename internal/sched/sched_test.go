package sched

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/vclock"
)

func mustAcquire(t *testing.T, s *Scheduler, project int64, worker string) int64 {
	t.Helper()
	id, _, err := s.Acquire(project, worker)
	if err != nil {
		t.Fatalf("Acquire(%d, %s): %v", project, worker, err)
	}
	return id
}

func mustComplete(t *testing.T, s *Scheduler, project, task int64, worker string, clock vclock.Clock) CompleteResult {
	t.Helper()
	res, err := s.Complete(project, task, worker, clock.Now)
	if err != nil {
		t.Fatalf("Complete(%d, %d, %s): %v", project, task, worker, err)
	}
	return res
}

func TestUnknownProject(t *testing.T) {
	s := New(nil, Options{})
	if _, _, err := s.Acquire(7, "w"); !errors.Is(err, ErrUnknownProject) {
		t.Fatalf("Acquire: got %v, want ErrUnknownProject", err)
	}
	if err := s.AddTask(7, 1, 0, 1); !errors.Is(err, ErrUnknownProject) {
		t.Fatalf("AddTask: got %v, want ErrUnknownProject", err)
	}
	if _, err := s.Stats(7); !errors.Is(err, ErrUnknownProject) {
		t.Fatalf("Stats: got %v, want ErrUnknownProject", err)
	}
}

func TestBreadthFirstOrder(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{})
	s.AddProject(1, BreadthFirst)
	for i := int64(1); i <= 3; i++ {
		s.AddTask(1, i, 0, 2)
	}
	// A single worker sweeping the queue sees tasks in id order: every
	// task has zero answers, so the id tie-break decides.
	for want := int64(1); want <= 3; want++ {
		got := mustAcquire(t, s, 1, "w1")
		if got != want {
			t.Fatalf("breadth pick: got task %d, want %d", got, want)
		}
		mustComplete(t, s, 1, got, "w1", clock)
	}
	// All three now have one answer; a second worker sweeps the same order.
	for want := int64(1); want <= 3; want++ {
		got := mustAcquire(t, s, 1, "w2")
		if got != want {
			t.Fatalf("breadth second pass: got task %d, want %d", got, want)
		}
		res := mustComplete(t, s, 1, got, "w2", clock)
		if !res.Retired {
			t.Fatalf("task %d should retire at redundancy 2", got)
		}
	}
	if _, _, err := s.Acquire(1, "w3"); !errors.Is(err, ErrNoTask) {
		t.Fatalf("drained queue: got %v, want ErrNoTask", err)
	}
}

func TestDepthFirstOrder(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{})
	s.AddProject(1, DepthFirst)
	s.AddTask(1, 1, 0, 3)
	s.AddTask(1, 2, 0, 3)
	// w1 answers task 1 once; depth-first steers w2 there too.
	id := mustAcquire(t, s, 1, "w1")
	mustComplete(t, s, 1, id, "w1", clock)
	if got := mustAcquire(t, s, 1, "w2"); got != 1 {
		t.Fatalf("depth pick: got task %d, want 1", got)
	}
}

func TestPriorityThenID(t *testing.T) {
	s := New(nil, Options{})
	s.AddProject(1, BreadthFirst)
	s.AddTask(1, 1, 0, 1)
	s.AddTask(1, 2, 10, 1)
	s.AddTask(1, 3, 10, 1)
	if got := mustAcquire(t, s, 1, "w"); got != 2 {
		t.Fatalf("priority pick: got task %d, want 2 (priority 10, lowest id)", got)
	}
}

func TestDuplicateAndRetired(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{})
	s.AddProject(1, BreadthFirst)
	s.AddTask(1, 1, 0, 2)

	mustComplete(t, s, 1, 1, "w1", clock)
	if _, err := s.Complete(1, 1, "w1", clock.Now); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: got %v, want ErrDuplicate", err)
	}
	// w1 answered the only task: nothing assignable for it.
	if _, _, err := s.Acquire(1, "w1"); !errors.Is(err, ErrNoTask) {
		t.Fatalf("answered task re-acquired: %v", err)
	}
	res := mustComplete(t, s, 1, 1, "w2", clock)
	if !res.Retired || res.Answers != 2 {
		t.Fatalf("retire: got %+v", res)
	}
	if _, err := s.Complete(1, 1, "w3", clock.Now); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("retired task: got %v, want ErrUnknownTask", err)
	}
}

// TestRetireFreesPerWorkerState is the regression test for the seed
// engine's unbounded lease growth: after a task retires, the scheduler
// holds no leases or answered marks for it.
func TestRetireFreesPerWorkerState(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{})
	s.AddProject(1, BreadthFirst)
	s.AddTask(1, 1, 0, 2)

	id := mustAcquire(t, s, 1, "w1")
	mustComplete(t, s, 1, id, "w1", clock)
	mustAcquire(t, s, 1, "w2")
	// w3 submits without ever acquiring; w2's lease is still outstanding
	// when the task retires.
	if res := mustComplete(t, s, 1, 1, "w3", clock); !res.Retired {
		t.Fatalf("want retire, got %+v", res)
	}
	st, err := s.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if st != (QueueStats{}) {
		t.Fatalf("retired task left scheduler state behind: %+v", st)
	}
}

func TestLeaseRenewalReturnsSameTask(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{LeaseTTL: time.Hour})
	s.AddProject(1, BreadthFirst)
	s.AddTask(1, 1, 0, 1)
	s.AddTask(1, 2, 0, 1)

	id, at, err := s.Acquire(1, "w1")
	if err != nil || id != 1 {
		t.Fatalf("first acquire: %d, %v", id, err)
	}
	// Reconnect before the TTL: same task, original assignment time.
	id2, at2, err := s.Acquire(1, "w1")
	if err != nil || id2 != 1 {
		t.Fatalf("renewal acquire: %d, %v", id2, err)
	}
	if !at2.Equal(at) {
		t.Fatalf("renewal changed assignment time: %v vs %v", at2, at)
	}
}

// TestLeaseReconnectNotBest: the reconnect guarantee holds even when the
// leased task is no longer heap-best — the worker gets its lease back
// instead of accumulating a second lease on the new best task.
func TestLeaseReconnectNotBest(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{LeaseTTL: time.Hour})
	s.AddProject(1, DepthFirst)
	s.AddTask(1, 1, 0, 3)
	s.AddTask(1, 2, 0, 3)

	if got := mustAcquire(t, s, 1, "w1"); got != 1 {
		t.Fatalf("w1 got %d, want 1", got)
	}
	// w2 answers task 2, making it depth-first-best.
	mustComplete(t, s, 1, 2, "w2", clock)
	// w1 reconnects: it must get its leased task 1, not the new best.
	if got := mustAcquire(t, s, 1, "w1"); got != 1 {
		t.Fatalf("reconnect handed out a second task: got %d, want 1", got)
	}
	st, _ := s.Stats(1)
	if st.ActiveLeases != 1 {
		t.Fatalf("worker accumulated leases: %+v", st)
	}
}

// TestLeaseAdmission: live leases count against redundancy, so a task all
// of whose slots are leased out is skipped for other workers.
func TestLeaseAdmission(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{LeaseTTL: time.Hour})
	s.AddProject(1, BreadthFirst)
	s.AddTask(1, 1, 0, 1)
	s.AddTask(1, 2, 0, 1)

	if got := mustAcquire(t, s, 1, "w1"); got != 1 {
		t.Fatalf("w1 got %d, want 1", got)
	}
	// Task 1's only slot is leased to w1 → w2 is steered to task 2.
	if got := mustAcquire(t, s, 1, "w2"); got != 2 {
		t.Fatalf("w2 got %d, want 2 (task 1 fully leased)", got)
	}
	// All slots leased → nothing for w3.
	if _, _, err := s.Acquire(1, "w3"); !errors.Is(err, ErrNoTask) {
		t.Fatalf("w3: got %v, want ErrNoTask", err)
	}
}

// TestLeaseExpiryReclaim: once a lease passes its TTL the slot is
// reclaimed and the task becomes assignable again.
func TestLeaseExpiryReclaim(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{LeaseTTL: time.Minute})
	s.AddProject(1, BreadthFirst)
	s.AddTask(1, 1, 0, 1)

	mustAcquire(t, s, 1, "w1")
	if _, _, err := s.Acquire(1, "w2"); !errors.Is(err, ErrNoTask) {
		t.Fatalf("pre-expiry: got %v, want ErrNoTask", err)
	}
	clock.Sleep(2 * time.Minute) // w1 walked away; the lease expires
	if got := mustAcquire(t, s, 1, "w2"); got != 1 {
		t.Fatalf("post-expiry: w2 got %d, want reclaimed task 1", got)
	}
	st, _ := s.Stats(1)
	if st.ActiveLeases != 1 {
		t.Fatalf("expired lease not reclaimed: %+v", st)
	}
	// w1's lease is gone, but w1 never answered — it may reacquire once
	// w2's lease expires, and its new lease gets a fresh assignment time.
	clock.Sleep(2 * time.Minute)
	if got := mustAcquire(t, s, 1, "w1"); got != 1 {
		t.Fatalf("w1 reacquire: got %d, want 1", got)
	}
}

// TestExpiredLeaseStillDatesCompletion: a worker submitting past its TTL
// (lease not yet reclaimed by anyone) still gets the original assignment
// time on its answer.
func TestExpiredLeaseStillDatesCompletion(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{LeaseTTL: time.Second})
	s.AddProject(1, BreadthFirst)
	s.AddTask(1, 1, 0, 1)
	_, at, _ := s.Acquire(1, "w1")
	clock.Sleep(time.Hour)
	res := mustComplete(t, s, 1, 1, "w1", clock)
	if !res.AssignedAt.Equal(at) {
		t.Fatalf("assignment time lost: got %v, want %v", res.AssignedAt, at)
	}
}

func TestCompleteWithoutLease(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{})
	s.AddProject(1, BreadthFirst)
	s.AddTask(1, 1, 0, 2)
	before := clock.Peek()
	res := mustComplete(t, s, 1, 1, "w1", clock)
	if !res.AssignedAt.After(before) {
		t.Fatalf("leaseless completion should date assignment at completion time: %+v", res)
	}
}

func TestRelease(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{LeaseTTL: time.Hour})
	s.AddProject(1, BreadthFirst)
	s.AddTask(1, 1, 0, 1)
	mustAcquire(t, s, 1, "w1")
	if _, _, err := s.Acquire(1, "w2"); !errors.Is(err, ErrNoTask) {
		t.Fatalf("leased: got %v", err)
	}
	s.Release(1, 1, "w1")
	if got := mustAcquire(t, s, 1, "w2"); got != 1 {
		t.Fatalf("released task not reassignable: got %d", got)
	}
	// No-op releases must not panic.
	s.Release(1, 99, "w1")
	s.Release(42, 1, "w1")
}

func TestAddTaskIdempotent(t *testing.T) {
	s := New(nil, Options{})
	s.AddProject(1, BreadthFirst)
	if err := s.AddTask(1, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTask(1, 1, 5, 3); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Stats(1)
	if st.PendingTasks != 1 {
		t.Fatalf("duplicate AddTask created a second entry: %+v", st)
	}
}

func TestAddProjectKeepsStrategy(t *testing.T) {
	clock := vclock.NewVirtual()
	s := New(clock, Options{})
	s.AddProject(1, DepthFirst)
	s.AddProject(1, BreadthFirst) // ignored
	s.AddTask(1, 1, 0, 3)
	s.AddTask(1, 2, 0, 3)
	id := mustAcquire(t, s, 1, "w1")
	mustComplete(t, s, 1, id, "w1", clock)
	if got := mustAcquire(t, s, 1, "w2"); got != 1 {
		t.Fatalf("strategy was overwritten: w2 got %d, want 1 (depth-first)", got)
	}
}

// TestDeterministicAcrossShardCounts: shard striping is a locking detail
// and must not influence assignment order.
func TestDeterministicAcrossShardCounts(t *testing.T) {
	trace := func(shards int) string {
		clock := vclock.NewVirtual()
		s := New(clock, Options{Shards: shards})
		out := ""
		for p := int64(1); p <= 5; p++ {
			s.AddProject(p, BreadthFirst)
			for tsk := int64(0); tsk < 4; tsk++ {
				s.AddTask(p, p*100+tsk, float64(tsk%2), 2)
			}
		}
		for round := 0; round < 8; round++ {
			for p := int64(1); p <= 5; p++ {
				for _, w := range []string{"a", "b"} {
					id, _, err := s.Acquire(p, w)
					if err != nil {
						continue
					}
					res, err := s.Complete(p, id, w, clock.Now)
					if err != nil {
						continue
					}
					out += fmt.Sprintf("%d:%s->%d(%d);", p, w, id, res.Answers)
				}
			}
		}
		return out
	}
	a, b, c := trace(1), trace(16), trace(64)
	if a != b || b != c {
		t.Fatalf("shard count changed scheduling:\n1:  %s\n16: %s\n64: %s", a, b, c)
	}
}
