package reprowd

import (
	"testing"

	"repro/internal/storage"
)

// TestFacadeQuickstart runs the Figure 2 pipeline entirely through the
// public API, exactly as the package documentation shows it.
func TestFacadeQuickstart(t *testing.T) {
	sim := NewSimulation(42)
	cc, err := NewContext(Options{
		DBDir:   t.TempDir(),
		Client:  sim.Platform,
		Clock:   sim.Clock,
		Storage: storage.Options{Sync: storage.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	objects := []Object{
		{"url": "http://img/1.jpg", "truth": "Yes"},
		{"url": "http://img/2.jpg", "truth": "No"},
		{"url": "http://img/3.jpg", "truth": "Yes"},
	}
	cd, err := cc.CrowdData(objects, "image_label")
	if err != nil {
		t.Fatal(err)
	}
	cd.SetPresenter(ImageLabel("Is there a dog in the image?"))
	if _, err := cd.Publish(PublishOptions{Redundancy: 3}); err != nil {
		t.Fatal(err)
	}

	oracle := FuncOracle{
		TruthFunc:   func(p map[string]string) string { return p["truth"] },
		OptionsFunc: func(map[string]string) []string { return []string{"Yes", "No"} },
	}
	pool := sim.Workers(WorkerSpec{Count: 5, Model: PerfectWorker{}, Prefix: "w"})
	if err := sim.Drain(cd, pool, oracle); err != nil {
		t.Fatal(err)
	}
	if _, err := cd.Collect(); err != nil {
		t.Fatal(err)
	}
	if err := cd.MajorityVote("mv"); err != nil {
		t.Fatal(err)
	}
	for _, row := range cd.Rows() {
		if row.Value("mv") != row.Object["truth"] {
			t.Fatalf("row %s mv = %q", row.Key, row.Value("mv"))
		}
	}

	// Lineage through the facade.
	rep, err := Lineage(cc, cd)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalAnswers != 9 {
		t.Fatalf("lineage answers = %d", rep.TotalAnswers)
	}
	rl, err := RowProvenance(cd.Rows()[0])
	if err != nil || len(rl.Answers) != 3 {
		t.Fatalf("row provenance: %+v, %v", rl, err)
	}
}
