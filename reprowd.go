// Package reprowd is the public API of this Reprowd reproduction: a system
// that makes crowdsourced data processing reproducible (Jiang & Wang,
// CIDR 2017).
//
// The package re-exports the system's user-facing surface from the
// internal implementation packages:
//
//   - Context / CrowdData — the paper's core abstraction (internal/core)
//   - presenters — task UIs (image labeling, record pairs, comparisons)
//   - the platform engine, REST server, and HTTP client (internal/platform)
//   - the simulated crowd (internal/crowd)
//   - quality control aggregators (internal/quality)
//   - crowdsourced operators: joins, sort, max, filter, count (internal/ops)
//   - lineage queries (internal/lineage)
//
// # Task scheduling
//
// Task assignment — the role PyBossa's scheduler played for the original
// system — is owned by internal/sched: each project has a heap-indexed
// priority queue (breadth- or depth-first on answer count, then priority,
// then task id), projects are striped across shard locks so concurrent
// projects never contend, and every assignment is a lease with a TTL on
// the injected clock. Expired leases are reclaimed so abandoned tasks
// become assignable again, and a task that reaches its redundancy is
// retired from the scheduler entirely. The platform engine can
// additionally journal every mutation to an internal/storage
// write-ahead log (platform.Journal + platform.EngineOptions), which is
// how the reprowd-server binary survives a kill -9 with its task and
// run state intact — the paper's crash-and-rerun guarantee extended
// from the client library to the platform side.
//
// # Quickstart
//
// The paper's Figure 2 — label three images with majority vote — looks
// like this:
//
//	sim := reprowd.NewSimulation(42)
//	cc, _ := reprowd.NewContext(reprowd.Options{
//		DBDir:  "exp.db",
//		Client: sim.Platform,
//		Clock:  sim.Clock,
//	})
//	defer cc.Close()
//
//	cd, _ := cc.CrowdData(objects, "image_label")
//	cd.SetPresenter(reprowd.ImageLabel("Is there a dog?"))
//	cd.Publish(reprowd.PublishOptions{Redundancy: 3})
//	sim.Drain(cd, oracle)             // simulated workers answer
//	cd.Collect()
//	cd.MajorityVote("mv")
//
// Rerunning the same program — after a crash, or on a colleague's machine
// with the database directory — republishes nothing and reproduces the
// identical output; that is the system's contract.
package reprowd

import (
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/lineage"
	"repro/internal/platform"
	"repro/internal/quality"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// Core abstraction.
type (
	// Context is the main entry point (the paper's CrowdContext).
	Context = core.CrowdContext
	// CrowdData is the paper's tabular dataset abstraction.
	CrowdData = core.CrowdData
	// Object is a row's input payload.
	Object = core.Object
	// Row is one CrowdData row with its persisted columns.
	Row = core.Row
	// TaskInfo is the persisted task column.
	TaskInfo = core.TaskInfo
	// ResultInfo is the persisted result column.
	ResultInfo = core.ResultInfo
	// Answer is one collected answer with lineage.
	Answer = core.Answer
	// Options configure NewContext.
	Options = core.Options
	// PublishOptions tune CrowdData.Publish.
	PublishOptions = core.PublishOptions
	// Presenter is a task UI.
	Presenter = core.Presenter
	// OpLogEntry is one entry of a table's manipulation history.
	OpLogEntry = core.OpLogEntry
)

// NewContext opens a Reprowd context (database + platform binding).
func NewContext(opts Options) (*Context, error) { return core.NewContext(opts) }

// DefaultKey is the default row-key function (canonical object hash).
func DefaultKey(obj Object) string { return core.DefaultKey(obj) }

// FieldKey keys rows by a named object field.
func FieldKey(field string) core.KeyFunc { return core.FieldKey(field) }

// Presenters.
var (
	// ImageLabel shows an image and asks for a label (Figure 2's UI).
	ImageLabel = core.ImageLabel
	// TextPair shows two records and asks if they match (entity
	// resolution).
	TextPair = core.TextPair
	// Compare shows two items and asks which is greater (sort/max).
	Compare = core.Compare
)

// Platform.
type (
	// Platform is the crowdsourcing platform interface.
	Platform = platform.Client
	// PlatformEngine is the embeddable in-process platform.
	PlatformEngine = platform.Engine
	// PlatformServer serves the platform over HTTP REST.
	PlatformServer = platform.Server
	// PlatformHTTPClient talks to a PlatformServer over the wire.
	PlatformHTTPClient = platform.HTTPClient
)

// PlatformEngineOptions configure NewPlatformEngineOpts (lease TTL,
// scheduler shards, write-ahead journal).
type PlatformEngineOptions = platform.EngineOptions

// PlatformJournal is the platform's write-ahead log on the embedded store.
type PlatformJournal = platform.Journal

// NewPlatformEngine creates an in-process platform. A nil clock uses a
// virtual clock.
func NewPlatformEngine(clock vclock.Clock) *PlatformEngine { return platform.NewEngine(clock) }

// NewPlatformEngineOpts creates an in-process platform with explicit
// scheduling/persistence options, replaying the journal if one is set.
func NewPlatformEngineOpts(opts PlatformEngineOptions) (*PlatformEngine, error) {
	return platform.NewEngineOpts(opts)
}

// OpenPlatformJournal binds a platform write-ahead log to db.
func OpenPlatformJournal(db *storage.DB) (*PlatformJournal, error) {
	return platform.OpenJournal(db)
}

// NewPlatformServer wraps an engine in an http.Handler.
func NewPlatformServer(e *PlatformEngine) *PlatformServer { return platform.NewServer(e) }

// NewPlatformHTTPClient returns a Platform speaking to baseURL.
func NewPlatformHTTPClient(baseURL string) *PlatformHTTPClient {
	return platform.NewHTTPClient(baseURL, nil)
}

// NewPlatformGatewayClient returns a Platform speaking to a ring-routed
// reprowd-gate at baseURL: identical REST surface, plus the shard-key
// routing hints that let the gateway route blind. Reprowd programs work
// unchanged against an N-node partitioned deployment through it.
func NewPlatformGatewayClient(baseURL string) *PlatformHTTPClient {
	return platform.NewGatewayHTTPClient(baseURL, nil)
}

// Quality control.
type (
	// Aggregator resolves redundant answers into decisions.
	Aggregator = quality.Aggregator
	// Vote is one worker's answer for one item.
	Vote = quality.Vote
	// Decision is an aggregator's per-item output.
	Decision = quality.Decision
	// MajorityVote is the paper's Figure 2 quality control.
	MajorityVote = quality.MajorityVote
	// WeightedVote weights workers by estimated accuracy.
	WeightedVote = quality.WeightedVote
	// DawidSkene is EM over worker confusion matrices.
	DawidSkene = quality.DawidSkene
	// GLAD jointly models worker ability and item difficulty.
	GLAD = quality.GLAD
	// GoldFiltered screens workers against gold questions.
	GoldFiltered = quality.GoldFiltered
)

// Crowd simulation.
type (
	// Worker is one simulated crowd member.
	Worker = crowd.Worker
	// WorkerSpec describes a group of simulated workers.
	WorkerSpec = crowd.Spec
	// Pool is a simulated crowd.
	Pool = crowd.Pool
	// Oracle supplies ground truth to simulated workers.
	Oracle = crowd.Oracle
	// FuncOracle adapts functions to Oracle.
	FuncOracle = crowd.FuncOracle
)

// NewPool builds a simulated crowd from a seed and specs.
func NewPool(seed int64, clock vclock.Clock, specs ...WorkerSpec) *Pool {
	return crowd.NewPool(seed, clock, specs...)
}

// Worker accuracy models.
type (
	// PerfectWorker always answers correctly.
	PerfectWorker = crowd.Perfect
	// UniformWorker answers correctly with probability P.
	UniformWorker = crowd.Uniform
	// TwoCoinWorker has asymmetric true-positive/true-negative rates.
	TwoCoinWorker = crowd.TwoCoin
	// SpammerWorker answers uniformly at random.
	SpammerWorker = crowd.Spammer
	// AdversaryWorker always answers incorrectly.
	AdversaryWorker = crowd.Adversary
)

// Worker latency models.
type (
	// FixedLatency always takes the same time.
	FixedLatency = crowd.FixedLatency
	// UniformLatency draws uniformly from a range.
	UniformLatency = crowd.UniformLatency
	// ExpLatency draws exponentially around a mean.
	ExpLatency = crowd.ExpLatency
)

// Lineage.
type (
	// LineageReport is a table-level lineage summary.
	LineageReport = lineage.Report
	// RowLineage is one row's provenance.
	RowLineage = lineage.RowLineage
)

// RowProvenance extracts one row's lineage.
func RowProvenance(row *Row) (RowLineage, error) { return lineage.OfRow(row) }

// Lineage summarizes a table's provenance (Figure 3, lines 11–16).
func Lineage(cc *Context, cd *CrowdData) (LineageReport, error) {
	return lineage.Summarize(cc, cd)
}

// Simulation bundles the pieces of a fully simulated deployment: a virtual
// clock and an in-process platform sharing it. It exists so examples and
// downstream users can stand up a working environment in one call.
type Simulation struct {
	// Clock is the deterministic clock driving everything.
	Clock *vclock.Virtual
	// Platform is the in-process crowdsourcing platform.
	Platform *PlatformEngine
	seed     int64
}

// NewSimulation builds a simulation environment seeded with seed.
func NewSimulation(seed int64) *Simulation {
	clock := vclock.NewVirtual()
	return &Simulation{Clock: clock, Platform: platform.NewEngine(clock), seed: seed}
}

// Workers creates a pool bound to the simulation's clock.
func (s *Simulation) Workers(specs ...WorkerSpec) *Pool {
	return crowd.NewPool(s.seed, s.Clock, specs...)
}

// Drain makes pool answer all open tasks of cd's platform project.
func (s *Simulation) Drain(cd *CrowdData, pool *Pool, oracle Oracle) error {
	pid, err := cd.ProjectID()
	if err != nil {
		return err
	}
	_, err = pool.Drain(s.Platform, pid, oracle)
	return err
}
