// Httpdemo runs the whole Reprowd stack over a real HTTP wire: it starts
// the platform REST server on a local port, connects the experiment through
// the HTTP client binding, drives simulated workers through the same REST
// API, and shows that the result is identical to the in-process path — the
// deployment shape the paper's Figure 1 draws, with the platform as a
// separate service (the PyBossa role).
//
//	go run ./examples/httpdemo
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	reprowd "repro"
	"repro/internal/vclock"
)

func main() {
	// Start the platform service on an ephemeral local port.
	clock := vclock.NewVirtual()
	engine := reprowd.NewPlatformEngine(clock)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: reprowd.NewPlatformServer(engine)}
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("platform REST service listening at %s\n", baseURL)

	// The experiment talks to the platform ONLY over HTTP.
	client := reprowd.NewPlatformHTTPClient(baseURL)

	dir, err := os.MkdirTemp("", "httpdemo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cc, err := reprowd.NewContext(reprowd.Options{DBDir: dir, Client: client, Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()

	objects := []reprowd.Object{
		{"url": "http://img/a.jpg", "truth": "Yes"},
		{"url": "http://img/b.jpg", "truth": "No"},
		{"url": "http://img/c.jpg", "truth": "Yes"},
		{"url": "http://img/d.jpg", "truth": "No"},
	}
	cd, err := cc.CrowdData(objects, "http_exp")
	if err != nil {
		log.Fatal(err)
	}
	cd.SetPresenter(reprowd.ImageLabel("Is there a dog?"))
	published, err := cd.Publish(reprowd.PublishOptions{Redundancy: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d tasks over HTTP\n", published)

	// The simulated workers ALSO speak to the platform over the wire,
	// exactly like browser-based PyBossa workers would.
	oracle := reprowd.FuncOracle{
		TruthFunc:   func(p map[string]string) string { return p["truth"] },
		OptionsFunc: func(map[string]string) []string { return []string{"Yes", "No"} },
	}
	pool := reprowd.NewPool(9, clock, reprowd.WorkerSpec{
		Count: 5, Model: reprowd.UniformWorker{P: 0.85}, Prefix: "remote",
	})
	pid, err := cd.ProjectID()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pool.Drain(client, pid, oracle); err != nil {
		log.Fatal(err)
	}

	if _, err := cd.Collect(); err != nil {
		log.Fatal(err)
	}
	if err := cd.MajorityVote("mv"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresults (everything crossed the HTTP wire twice):")
	for _, row := range cd.Rows() {
		fmt.Printf("  %-20s -> %-4s (%d answers)\n",
			row.Object["url"], row.Value("mv"), len(row.Result.Answers))
	}
}
