// Lineage reproduces the paper's Figure 3: Ally receives Bob's experiment
// (code + database), reruns it for free, extends it with more images, and
// examines the lineage of the crowdsourced answers (the paper's lines
// 11–16: when were tasks published? which workers did them?).
//
//	go run ./examples/lineage -db /tmp/shared.db
package main

import (
	"flag"
	"fmt"
	"log"

	reprowd "repro"
)

var oracle = reprowd.FuncOracle{
	TruthFunc:   func(p map[string]string) string { return p["truth"] },
	OptionsFunc: func(map[string]string) []string { return []string{"Yes", "No"} },
}

func main() {
	dbDir := flag.String("db", "lineage.db", "Reprowd database directory")
	flag.Parse()

	sim := reprowd.NewSimulation(7)
	cc, err := reprowd.NewContext(reprowd.Options{DBDir: *dbDir, Client: sim.Platform, Clock: sim.Clock})
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()

	// --- Bob's original experiment (Figure 2) --------------------------
	bobImages := []reprowd.Object{
		{"url": "http://img/1.jpg", "truth": "Yes"},
		{"url": "http://img/2.jpg", "truth": "No"},
		{"url": "http://img/3.jpg", "truth": "Yes"},
	}
	cd, err := cc.CrowdData(bobImages, "image_label")
	if err != nil {
		log.Fatal(err)
	}
	cd.SetPresenter(reprowd.ImageLabel("Is there a dog in the image?"))
	if _, err := cd.Publish(reprowd.PublishOptions{Redundancy: 3}); err != nil {
		log.Fatal(err)
	}
	pool := sim.Workers(reprowd.WorkerSpec{Count: 5, Model: reprowd.UniformWorker{P: 0.85}, Prefix: "turker"})
	if err := sim.Drain(cd, pool, oracle); err != nil {
		log.Fatal(err)
	}
	if _, err := cd.Collect(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bob's experiment done.")

	// --- Ally extends it (Figure 3, line 5) ----------------------------
	more := []reprowd.Object{
		{"url": "http://img/4.jpg", "truth": "No"},
		{"url": "http://img/5.jpg", "truth": "Yes"},
		{"url": "http://img/6.jpg", "truth": "No"},
	}
	added, err := cd.Extend(more)
	if err != nil {
		log.Fatal(err)
	}
	published, err := cd.Publish(reprowd.PublishOptions{Redundancy: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ally extended the table by %d rows; only %d new tasks were published — Bob's answers stayed cached.\n",
		added, published)
	if err := sim.Drain(cd, pool, oracle); err != nil {
		log.Fatal(err)
	}
	if _, err := cd.Collect(); err != nil {
		log.Fatal(err)
	}
	if err := cd.MajorityVote("mv"); err != nil {
		log.Fatal(err)
	}

	// --- Lineage (Figure 3, lines 11–16) --------------------------------
	fmt.Println("\nPer-row lineage:")
	for _, row := range cd.Rows() {
		rl, err := reprowd.RowProvenance(row)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s published %s via %q\n", row.Object["url"],
			rl.PublishedAt.Format("15:04:05.000"), rl.Presenter)
		for _, a := range rl.Answers {
			fmt.Printf("    %-12s answered %-4s at %s\n", a.Worker, a.Value, a.SubmittedAt.Format("15:04:05.000"))
		}
	}

	rep, err := reprowd.Lineage(cc, cd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable-level report:")
	fmt.Print(rep.Format())
}
