// Sortmax demonstrates the crowdsourced sort and max operators: ranking a
// set of items whose quality only humans can judge (here simulated by
// hidden scores), with a full-budget sort, a reduced-budget sort, and a
// single-elimination max tournament.
//
//	go run ./examples/sortmax -items 15
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	reprowd "repro"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

func main() {
	var (
		n    = flag.Int("items", 15, "number of items to rank")
		seed = flag.Int64("seed", 3, "simulation seed")
	)
	flag.Parse()

	list := simdata.SortItems(*seed, *n)
	items := make([]reprowd.SortItem, 0, *n)
	for _, it := range list.Items {
		items = append(items, reprowd.SortItem{ID: it.ID, Label: it.Label})
	}

	dir, err := os.MkdirTemp("", "sortmax-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sim := reprowd.NewSimulation(*seed)
	cc, err := reprowd.NewContext(reprowd.Options{DBDir: dir, Client: sim.Platform, Clock: sim.Clock})
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()

	pool := sim.Workers(reprowd.WorkerSpec{Count: 5, Model: reprowd.UniformWorker{P: 0.85}, Prefix: "judge"})
	answer := reprowd.PoolAnswerer(sim.Platform, pool, reprowd.CompareOracle(list.ScoreOf()))

	// Full-budget sort.
	full, err := reprowd.CrowdSort(cc, items, reprowd.SortConfig{
		Table: "full", Redundancy: 3, Answer: answer,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full sort:     %d comparisons, %d answers, Kendall tau vs truth = %.3f\n",
		full.Cost.Tasks, full.Cost.Answers, metrics.KendallTau(full.Order, list.TrueOrder))

	// Budgeted sort: a third of the comparisons.
	budget := (*n * (*n - 1) / 2) / 3
	cheap, err := reprowd.CrowdSort(cc, items, reprowd.SortConfig{
		Table: "cheap", Redundancy: 3, Budget: budget, Seed: *seed, Answer: answer,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budgeted sort: %d comparisons, %d answers, Kendall tau vs truth = %.3f\n",
		cheap.Cost.Tasks, cheap.Cost.Answers, metrics.KendallTau(cheap.Order, list.TrueOrder))

	// Max tournament.
	max, err := reprowd.CrowdMax(cc, items, reprowd.MaxConfig{
		Table: "champ", Redundancy: 3, Answer: answer,
	})
	if err != nil {
		log.Fatal(err)
	}
	correct := "correct"
	if max.Winner != list.TrueOrder[0] {
		correct = fmt.Sprintf("true best was %s", list.TrueOrder[0])
	}
	fmt.Printf("max:           winner %s after %d rounds and %d comparisons (%s)\n",
		max.Winner, max.Rounds, max.Cost.Tasks, correct)

	fmt.Println("\ntop 5 by crowd ranking:")
	for i, id := range full.Order[:min(5, len(full.Order))] {
		fmt.Printf("  %d. %s (score %.1f)\n", i+1, id, full.Scores[id])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
