// Quickstart reproduces the paper's Figure 2: Bob labels three images with
// redundancy 3 and majority vote. Running this program twice against the
// same -db directory demonstrates the sharable guarantee — the second run
// publishes nothing and reproduces the identical output from the database.
//
//	go run ./examples/quickstart -db /tmp/bob.db
//	go run ./examples/quickstart -db /tmp/bob.db   # cached rerun
package main

import (
	"flag"
	"fmt"
	"log"

	reprowd "repro"
)

func main() {
	dbDir := flag.String("db", "quickstart.db", "Reprowd database directory")
	flag.Parse()

	// A fully simulated deployment: deterministic clock, in-process
	// platform, and a small crowd of 80%-accurate workers.
	sim := reprowd.NewSimulation(42)
	cc, err := reprowd.NewContext(reprowd.Options{
		DBDir:  *dbDir,
		Client: sim.Platform,
		Clock:  sim.Clock,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()

	// Step 1 (paper line 4): prepare the input data.
	objects := []reprowd.Object{
		{"url": "http://img/1.jpg", "truth": "Yes"},
		{"url": "http://img/2.jpg", "truth": "No"},
		{"url": "http://img/3.jpg", "truth": "Yes"},
	}
	cd, err := cc.CrowdData(objects, "image_label")
	if err != nil {
		log.Fatal(err)
	}

	// Step 2 (line 5): choose the web user interface.
	cd.SetPresenter(reprowd.ImageLabel("Is there a dog in the image?"))

	// Step 3 (line 6): publish the tasks.
	published, err := cd.Publish(reprowd.PublishOptions{Redundancy: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d new tasks (0 means everything was cached)\n", published)

	// Simulated workers do the tasks. On a rerun there is nothing for
	// them to do.
	if published > 0 {
		oracle := reprowd.FuncOracle{
			TruthFunc:   func(p map[string]string) string { return p["truth"] },
			OptionsFunc: func(map[string]string) []string { return []string{"Yes", "No"} },
		}
		pool := sim.Workers(reprowd.WorkerSpec{
			Count: 5, Model: reprowd.UniformWorker{P: 0.8}, Prefix: "worker",
		})
		if err := sim.Drain(cd, pool, oracle); err != nil {
			log.Fatal(err)
		}
	}

	// Step 4 (line 7): get the results.
	rep, err := cd.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected: %d rows complete, %d answers fetched this run\n", rep.Complete, rep.NewAnswers)

	// Step 5 (line 8): majority vote.
	if err := cd.MajorityVote("mv"); err != nil {
		log.Fatal(err)
	}
	for _, row := range cd.Rows() {
		fmt.Printf("%-20s -> %-4s (confidence %s, %d answers)\n",
			row.Object["url"], row.Value("mv"), row.Value("mv_confidence"), len(row.Result.Answers))
	}
	fmt.Println("\nrun me again with the same -db: the experiment reruns entirely from cache")
}
