// Entityresolution runs the two crowdsourced join algorithms the paper
// re-implemented on CrowdData — the CrowdER hybrid human–machine join
// (Wang et al. PVLDB 2012) and the transitivity-aware join (Wang et al.
// SIGMOD 2013) — against the all-pairs baseline, on a synthetic dirty
// restaurant corpus, and reports crowd cost and match quality for each.
//
//	go run ./examples/entityresolution -entities 40
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	reprowd "repro"
	"repro/internal/simdata"
)

func main() {
	var (
		entities = flag.Int("entities", 30, "distinct entities in the corpus")
		seed     = flag.Int64("seed", 1, "simulation seed")
		tau      = flag.Float64("tau", 0.35, "machine-pass similarity threshold")
	)
	flag.Parse()

	corpus := simdata.Restaurants(simdata.ERConfig{
		Seed: *seed, Entities: *entities, DupProb: 0.6, MaxDups: 3, NoiseOps: 2,
	})
	records := make([]reprowd.OpRecord, 0, len(corpus.Records))
	for _, r := range corpus.Records {
		records = append(records, reprowd.OpRecord{ID: r.ID, Fields: r.Fields})
	}
	fmt.Printf("corpus: %d records, %d true duplicate pairs\n\n", len(records), len(corpus.Matches))

	run := func(name string, f func(cc *reprowd.Context, answer reprowd.Answerer) (reprowd.JoinResult, error)) {
		dir, err := os.MkdirTemp("", "er-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		sim := reprowd.NewSimulation(*seed)
		cc, err := reprowd.NewContext(reprowd.Options{DBDir: dir, Client: sim.Platform, Clock: sim.Clock})
		if err != nil {
			log.Fatal(err)
		}
		defer cc.Close()

		pool := sim.Workers(reprowd.WorkerSpec{Count: 7, Model: reprowd.UniformWorker{P: 0.9}, Prefix: "w"})
		answer := reprowd.PoolAnswerer(sim.Platform, pool, reprowd.PairOracle(corpus.Matches))
		res, err := f(cc, answer)
		if err != nil {
			log.Fatal(err)
		}
		q := reprowd.PairQuality(res.Matches, corpus.Matches)
		fmt.Printf("%-22s asked crowd %5d pairs (%d tasks, %d answers), deduced %4d, machine-pruned %5d | %s\n",
			name, res.CrowdPairs, res.CrowdTasks, res.Cost.Answers, res.DeducedPairs, res.MachinePairs, q)
	}

	run("all-pairs baseline", func(cc *reprowd.Context, answer reprowd.Answerer) (reprowd.JoinResult, error) {
		return reprowd.AllPairsJoin(cc, records, reprowd.JoinConfig{Table: "er", Redundancy: 3, Answer: answer})
	})
	run("CrowdER hybrid", func(cc *reprowd.Context, answer reprowd.Answerer) (reprowd.JoinResult, error) {
		return reprowd.HybridJoin(cc, records, reprowd.HybridConfig{
			JoinConfig: reprowd.JoinConfig{Table: "er", Redundancy: 3, Answer: answer},
			Threshold:  *tau,
		})
	})
	run("transitive (sim-desc)", func(cc *reprowd.Context, answer reprowd.Answerer) (reprowd.JoinResult, error) {
		return reprowd.TransitiveJoin(cc, records, reprowd.TransitiveConfig{
			JoinConfig: reprowd.JoinConfig{Table: "er", Redundancy: 3, Answer: answer},
			Threshold:  *tau,
			Order:      reprowd.OrderSimilarityDesc,
		})
	})

	fmt.Println("\nthe shape to expect: hybrid ≪ all-pairs in crowd cost at similar F1; transitive asks even fewer")
}
