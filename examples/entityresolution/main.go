// Entityresolution runs the paper's crowdsourced entity-resolution
// workload end to end on the distributed platform: it boots N journaled
// leader nodes partitioned by a consistent-hash ring, fronts them with
// the ring-routed gateway, and drives a CrowdER-style crowd join through
// the distributed operator runtime — the planner shards the candidate
// pairs across partitions, task creation fans out through the gateway
// client's batched path, answers stream into incremental Dawid-Skene as
// they land, and cross-node lineage reconstructs which leader served
// which rows.
//
//	go run ./examples/entityresolution -entities 40 -partitions 4
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	reprowd "repro"
	"repro/internal/gate"
	"repro/internal/platform"
	"repro/internal/repl"
	"repro/internal/simdata"
	"repro/internal/storage"
	"repro/internal/vclock"
)

func main() {
	var (
		entities   = flag.Int("entities", 40, "distinct entities in the corpus")
		seed       = flag.Int64("seed", 1, "simulation seed")
		partitions = flag.Int("partitions", 4, "leader partitions behind the gateway")
		pairCap    = flag.Int("pairs", 600, "most-similar pairs sent to the crowd")
	)
	flag.Parse()

	corpus := simdata.Restaurants(simdata.ERConfig{
		Seed: *seed, Entities: *entities, DupProb: 0.6, MaxDups: 3, NoiseOps: 2,
	})
	records := make([]reprowd.OpRecord, 0, len(corpus.Records))
	for _, r := range corpus.Records {
		records = append(records, reprowd.OpRecord{ID: r.ID, Fields: r.Fields})
	}
	pairs, err := reprowd.TopPairs(records, *pairCap, reprowd.SimilarityMeasure{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d records, %d true duplicate pairs; asking the crowd about the top %d pairs\n\n",
		len(records), len(corpus.Matches), len(pairs))

	// Boot the partitioned deployment: one journaled leader per ring
	// partition, each allocating only ids it owns, behind one gateway.
	dir, err := os.MkdirTemp("", "er-dist-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	parts := make([]string, *partitions)
	for i := range parts {
		parts[i] = fmt.Sprintf("n%d", i+1)
	}
	ring := repl.NewRing(0, parts...)
	topo := gate.Topology{}
	for _, name := range parts {
		hs, err := startLeader(filepath.Join(dir, name), name, ring)
		if err != nil {
			log.Fatal(err)
		}
		defer hs.Close()
		topo.Nodes = append(topo.Nodes, gate.NodeConfig{Name: name, URL: hs.URL})
	}
	g, err := gate.New(gate.Options{Topology: topo, ProbeInterval: 50 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	gs := httptest.NewServer(g)
	defer gs.Close()
	fmt.Printf("gateway fronting %d leaders at %s\n", len(parts), gs.URL)

	// The experiment — and the simulated crowd — speak ONLY to the
	// gateway; no code below knows which leader holds what.
	client := reprowd.NewPlatformGatewayClient(gs.URL)
	cc, err := reprowd.NewContext(reprowd.Options{
		DBDir: filepath.Join(dir, "ctx"), Client: client, Clock: vclock.NewVirtual(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()

	pool := reprowd.NewPool(*seed, vclock.NewVirtual(), reprowd.WorkerSpec{
		Count: 7, Model: reprowd.UniformWorker{P: 0.9}, Prefix: "w",
	})
	var poolMu sync.Mutex
	online := reprowd.NewOnlineDawidSkene(reprowd.DawidSkene{}, 64)
	streamedBy := map[string]int{}
	var streamMu sync.Mutex

	start := time.Now()
	res, err := reprowd.DistCrowdJoin(cc, pairs, reprowd.DistConfig{
		Partitions: parts,
		Table:      "er",
		Redundancy: 3,
		Quality:    online,
		OnVerdict: func(v reprowd.DistVerdict) {
			streamMu.Lock()
			streamedBy[v.Partition]++
			streamMu.Unlock()
		},
		Answer: func(sr reprowd.DistShardRun) error {
			poolMu.Lock()
			defer poolMu.Unlock()
			_, err := pool.Drain(client, sr.ProjectID, reprowd.PairOracle(corpus.Matches))
			return err
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	q := reprowd.PairQuality(res.Matches, corpus.Matches)
	fmt.Printf("\ndistributed crowd join: %d tasks, %d answers across %d shards in %s | %s\n",
		res.Cost.Tasks, res.Cost.Answers, len(res.Shards), elapsed.Round(time.Millisecond), q)
	for _, sh := range res.Shards {
		streamMu.Lock()
		live := streamedBy[sh.Partition]
		streamMu.Unlock()
		fmt.Printf("  shard %-10s on %-4s %4d pairs, %5d answers (%d streamed live)\n",
			sh.Table, sh.Partition, sh.Rows, sh.Answers, live)
	}

	// Cross-node lineage: reconstructed from the context database alone.
	rep, err := reprowd.DistLineage(cc, "er")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", rep.Format())
	fmt.Println("\nevery answer streamed through the gateway into incremental Dawid-Skene; the decisions match a batch fit over the same votes")
}

// startLeader boots one journaled leader that allocates only ring-owned
// ids — the same shape `reprowd-server -ring -ring-self` runs in
// production, in-process for the example.
func startLeader(dir, name string, ring *repl.Ring) (*httptest.Server, error) {
	db, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		return nil, err
	}
	j, err := platform.OpenJournal(db)
	if err != nil {
		return nil, err
	}
	engine, err := platform.NewEngineOpts(platform.EngineOptions{
		Clock:   vclock.NewVirtual(),
		Journal: j,
		OwnsID:  func(id int64) bool { return ring.Lookup(id) == name },
	})
	if err != nil {
		return nil, err
	}
	node := repl.NewLeaderNode(engine, j, db)
	srv := platform.NewServer(engine)
	srv.Handle("/api/repl/", node.Handler())
	return httptest.NewServer(srv), nil
}
