// Command clocklint enforces the determinism contract (docs/TESTING.md):
// the five core packages — internal/platform, internal/sched,
// internal/repl, internal/gate, internal/storage — must not read the wall
// clock or ambient randomness directly. State-bearing time flows through
// an injected vclock.Clock and randomness through a vclock.Rand, so the
// simulation harness (internal/sim) can run a whole cluster in virtual
// time and replay it from a seed. Metric-only time goes through
// internal/obs (Now/Since), which is deliberately not banned: observed
// durations never feed back into control flow or persisted state.
//
// The check is syntactic (stdlib go/parser, no build step): it flags
//
//   - calls to the time package's clock functions (Now, Sleep, Since,
//     Until, After, AfterFunc, Tick, NewTimer, NewTicker) — time.Time and
//     time.Duration values, constructors like time.Date, and parsing are
//     all fine, because they read no clock;
//   - any import of math/rand or math/rand/v2;
//   - a dot-import of time (it would hide the calls from this tool).
//
// _test.go files are exempt: tests own their harnesses. Genuine
// exceptions go in ci/clocklint/allow.txt, one "path selector" pair per
// line, with a comment saying why — not in code that quietly dodges the
// pattern.
//
// Usage (CI lint job):
//
//	go run ./ci/clocklint
//	go run ./ci/clocklint internal/extra ...   # override the root list
package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// defaultRoots are the packages under the determinism contract.
var defaultRoots = []string{
	"internal/platform",
	"internal/sched",
	"internal/repl",
	"internal/gate",
	"internal/storage",
}

// bannedClockFuncs are the time-package functions that read or wait on
// the process clock.
var bannedClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

const allowFile = "ci/clocklint/allow.txt"

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = defaultRoots
	}
	allow, err := loadAllowlist(allowFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clocklint: %v\n", err)
		os.Exit(2)
	}
	var problems []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name == ".git" || name == "testdata" || name == "vendor" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			found, err := lintFile(path, allow)
			if err != nil {
				return err
			}
			problems = append(problems, found...)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "clocklint: %v\n", err)
			os.Exit(2)
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "clocklint: %d violation(s); inject vclock.Clock / vclock.Rand (or obs.Now for metric-only time), or add an allow.txt entry with a reason\n", len(problems))
		os.Exit(1)
	}
}

// loadAllowlist reads allow.txt: one "path selector" pair per line
// (e.g. "internal/gate/gate.go time.Now"); '#' starts a comment. A
// missing file means an empty allowlist.
func loadAllowlist(path string) (map[string]bool, error) {
	allow := make(map[string]bool)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return allow, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: malformed line %q (want \"path selector\")", path, sc.Text())
		}
		allow[fields[0]+" "+fields[1]] = true
	}
	return allow, sc.Err()
}

func lintFile(path string, allow map[string]bool) ([]string, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, selector, msg string) {
		if allow[filepath.ToSlash(path)+" "+selector] {
			return
		}
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d:%d: %s", p.Filename, p.Line, p.Column, msg))
	}

	// Pass 1: imports. Find the local name of "time" and flag randomness.
	timeName := ""
	for _, imp := range file.Imports {
		ipath, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch ipath {
		case "time":
			timeName = "time"
			if imp.Name != nil {
				timeName = imp.Name.Name
				if timeName == "." {
					report(imp.Pos(), "import-dot-time",
						"dot-import of time hides clock calls from clocklint; import it qualified")
					timeName = ""
				}
			}
		case "math/rand", "math/rand/v2":
			report(imp.Pos(), "import-math-rand",
				fmt.Sprintf("import of %s: draw randomness from an injected vclock.Rand so scenarios replay from a seed", ipath))
		}
	}
	if timeName == "" || timeName == "_" {
		return problems, nil
	}

	// Pass 2: calls to the time package's clock functions.
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != timeName || !bannedClockFuncs[sel.Sel.Name] {
			return true
		}
		report(call.Pos(), "time."+sel.Sel.Name,
			fmt.Sprintf("time.%s reads the process clock: take a vclock.Clock (state/control-flow time) or use obs.Now/obs.Since (metric-only time)", sel.Sel.Name))
		return true
	})
	return problems, nil
}
