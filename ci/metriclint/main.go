// Command metriclint enforces the repository's metric naming convention
// (docs/OPERATIONS.md): every name registered on an internal/obs registry
// must look like reprowd_<subsystem>_<name>[_<unit>] — lowercase
// [a-z0-9_], at least three segments — counters must end in _total, and
// histograms in _seconds (every histogram in this codebase measures
// latency; a new unit means extending this tool, not skipping it).
//
// The check is purely syntactic: it parses every .go file under the given
// roots (stdlib go/parser, no build step) and inspects calls to the obs
// registration methods whose metric-name argument is a string literal.
// Names built at runtime are invisible to it — keep metric names literal,
// which is also what makes them greppable from a dashboard.
//
// Usage (CI lint job):
//
//	go run ./ci/metriclint .
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// registrars maps obs registration method names to the suffix their
// metric names must carry ("" = no suffix rule beyond the general shape).
var registrars = map[string]string{
	"Counter":          "_total",
	"CounterVec":       "_total",
	"CounterFunc":      "_total",
	"Histogram":        "_seconds",
	"SampledHistogram": "_seconds",
	"Gauge":            "",
	"GaugeFunc":        "",
}

// namePattern is the general shape: reprowd_<subsystem>_<rest>, lowercase.
var namePattern = regexp.MustCompile(`^reprowd_[a-z0-9]+(_[a-z0-9]+)+$`)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var problems []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name == ".git" || name == "testdata" || name == "vendor" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			found, err := lintFile(path)
			if err != nil {
				return err
			}
			problems = append(problems, found...)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(2)
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "metriclint: %d metric name(s) violate reprowd_<subsystem>_<name>_<unit>\n", len(problems))
		os.Exit(1)
	}
}

// lintFile parses one source file and checks every literal metric name
// passed to a registration method.
func lintFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var problems []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		suffix, ok := registrars[sel.Sel.Name]
		if !ok {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		pos := fset.Position(lit.Pos())
		if !namePattern.MatchString(name) {
			problems = append(problems, fmt.Sprintf(
				"%s: %s(%q): want reprowd_<subsystem>_<name> in lowercase [a-z0-9_]",
				pos, sel.Sel.Name, name))
			return true
		}
		if suffix != "" && !strings.HasSuffix(name, suffix) {
			problems = append(problems, fmt.Sprintf(
				"%s: %s(%q): %s names must end in %s",
				pos, sel.Sel.Name, name, sel.Sel.Name, suffix))
		}
		return true
	})
	return problems, nil
}
