// Command linkcheck is the docs CI gate: it walks a repository tree,
// extracts every inline Markdown link and image from *.md files, and
// fails (exit 1) if a relative link points at a file that does not
// exist. External links (http/https/mailto) and pure anchors (#...) are
// skipped — this is an intra-repo integrity check, not a crawler — and
// anchors on relative links are stripped before the existence check.
// Standard library only, so CI can `go run ./ci/linkcheck .` with no
// extra dependencies.
//
// Usage:
//
//	go run ./ci/linkcheck [dir]   # default "."
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline Markdown links and images: [text](target) /
// ![alt](target), with an optional "title". Reference-style definitions
// ([ref]: target) are matched by refRE. Known limitation: targets
// containing spaces or parentheses do not match and are skipped, not
// checked — keep doc filenames free of both.
var (
	linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)
	refRE  = regexp.MustCompile(`(?m)^\s*\[[^\]]+\]:\s+(\S+)`)
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken, files, links, err := check(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		os.Exit(2)
	}
	for _, b := range broken {
		fmt.Fprintf(os.Stderr, "linkcheck: %s\n", b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s) across %d markdown files\n", len(broken), files)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d files, %d intra-repo links, all resolve\n", files, links)
}

// check walks root and returns a description of every broken relative
// link, plus counts for the summary line.
func check(root string) (broken []string, files, links int, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and dependency trees; everything else is
			// fair game (docs/, ci/, the repo root).
			switch d.Name() {
			case ".git", "node_modules", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		files++
		buf, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, target := range targets(string(buf)) {
			if skipTarget(target) {
				continue
			}
			links++
			if msg := resolve(root, path, target); msg != "" {
				broken = append(broken, msg)
			}
		}
		return nil
	})
	return broken, files, links, err
}

// targets extracts every link target in a Markdown document.
func targets(doc string) []string {
	var out []string
	for _, m := range linkRE.FindAllStringSubmatch(doc, -1) {
		out = append(out, m[1])
	}
	for _, m := range refRE.FindAllStringSubmatch(doc, -1) {
		out = append(out, m[1])
	}
	return out
}

// skipTarget reports whether a link target is outside this check's
// scope: absolute URLs, mail links, and in-page anchors.
func skipTarget(t string) bool {
	return strings.Contains(t, "://") ||
		strings.HasPrefix(t, "mailto:") ||
		strings.HasPrefix(t, "#")
}

// resolve checks one relative target against the filesystem, returning a
// human-readable failure ("" = fine). Anchors are stripped: linking into
// a section of an existing file is fine; linking into a missing file is
// not. A root-absolute target ("/README.md") resolves against the scan
// root, matching how GitHub renders it, not against the linking file's
// directory.
func resolve(root, fromFile, target string) string {
	clean := target
	if i := strings.IndexByte(clean, '#'); i >= 0 {
		clean = clean[:i]
	}
	if clean == "" {
		return ""
	}
	base := filepath.Dir(fromFile)
	if strings.HasPrefix(clean, "/") {
		base = root
	}
	full := filepath.Join(base, filepath.FromSlash(clean))
	if _, err := os.Stat(full); err != nil {
		return fmt.Sprintf("%s: link %q → %s does not exist", fromFile, target, full)
	}
	return ""
}
