// Command reprowd inspects a Reprowd database directory: the tables, rows,
// answers, lineage, and manipulation history of a shared experiment. This
// is Ally's tool for examining Bob's experiment without rerunning his code.
//
// Usage:
//
//	reprowd tables  -db exp.db
//	reprowd show    -db exp.db -table image_label [-row KEY]
//	reprowd lineage -db exp.db -table image_label
//	reprowd oplog   -db exp.db -table image_label
//	reprowd stats   -db exp.db
//	reprowd export  -db exp.db -table image_label > exp.jsonl
//	reprowd import  -db exp.db < exp.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/platform"
	"repro/internal/storage"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: reprowd <tables|show|lineage|oplog|stats|export|import> -db DIR [-table T] [-row KEY]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dbDir := fs.String("db", "", "Reprowd database directory (required)")
	table := fs.String("table", "", "table name")
	rowKey := fs.String("row", "", "row key (show only this row)")
	fs.Parse(os.Args[2:])
	if *dbDir == "" {
		usage()
	}

	// Inspection opens the database read-only (no lock, no mutation), so
	// it is safe even while the experiment is running; only `import`
	// needs the write lock. The throwaway engine satisfies the context's
	// platform wiring; it is never called.
	cc, err := core.NewContext(core.Options{
		DBDir:  *dbDir,
		Client: platform.NewEngine(nil),
		Storage: storage.Options{
			ReadOnly: cmd != "import",
			Sync:     storage.SyncAlways,
		},
	})
	if err != nil {
		fatal(err)
	}
	defer cc.Close()

	switch cmd {
	case "tables":
		tables, err := cc.Tables()
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			cd, err := cc.LoadTable(t)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-30s %d rows\n", t, cd.Len())
		}
	case "show":
		requireTable(*table)
		cd, err := cc.LoadTable(*table)
		if err != nil {
			fatal(err)
		}
		for _, row := range cd.Rows() {
			if *rowKey != "" && row.Key != *rowKey {
				continue
			}
			printRow(row)
		}
	case "lineage":
		requireTable(*table)
		cd, err := cc.LoadTable(*table)
		if err != nil {
			fatal(err)
		}
		rep, err := lineage.Summarize(cc, cd)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Format())
	case "oplog":
		requireTable(*table)
		ops, err := cc.OpLog(*table)
		if err != nil {
			fatal(err)
		}
		for _, op := range ops {
			fmt.Printf("[%d] %s %s col=%s params=%v\n",
				op.Seq, op.At.Format(time.RFC3339Nano), op.Op, op.Col, op.Params)
		}
	case "stats":
		st := cc.DB().Stats()
		fmt.Printf("keys:        %d\n", st.Keys)
		fmt.Printf("segments:    %d\n", st.Segments)
		fmt.Printf("live bytes:  %d\n", st.LiveBytes)
		fmt.Printf("total bytes: %d\n", st.TotalBytes)
		fmt.Printf("dead bytes:  %d\n", st.DeadBytes)
	case "export":
		requireTable(*table)
		if err := cc.ExportTable(*table, os.Stdout); err != nil {
			fatal(err)
		}
	case "import":
		n, err := cc.ImportTable(os.Stdin)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "imported %d rows\n", n)
	default:
		usage()
	}
}

func printRow(row *core.Row) {
	fmt.Printf("row %s\n", row.Key)
	for _, f := range sortedKeys(row.Object) {
		fmt.Printf("  object.%s = %s\n", f, row.Object[f])
	}
	if row.Task != nil {
		fmt.Printf("  task: platform id %d, presenter %q, redundancy %d, published %s\n",
			row.Task.PlatformTaskID, row.Task.Presenter, row.Task.Redundancy,
			row.Task.PublishedAt.Format(time.RFC3339Nano))
	}
	if row.Result != nil {
		fmt.Printf("  result: %d answers (complete=%v)\n", len(row.Result.Answers), row.Result.Complete)
		for _, a := range row.Result.Answers {
			fmt.Printf("    %-20s %-10s at %s\n", a.Worker, a.Value, a.SubmittedAt.Format(time.RFC3339Nano))
		}
	}
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func requireTable(t string) {
	if t == "" {
		fmt.Fprintln(os.Stderr, "reprowd: -table is required for this command")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprowd:", err)
	os.Exit(1)
}
