// Command reprowd-server runs the crowdsourcing platform as a standalone
// HTTP service — the PyBossa role in the paper's architecture. Reprowd
// programs connect to it with platform.NewHTTPClient (or
// reprowd.NewPlatformHTTPClient), and the CLI/worker simulators can drive
// it over the same REST API.
//
// With -data set, every platform mutation is journaled to an embedded
// internal/storage database before the request returns, and a restarted
// server replays the journal into the internal/sched scheduling
// subsystem. Under the default -sync always, killing the process loses
// at most in-flight leases (which expire by design), never accepted
// projects, tasks or answers — the paper's crash-and-rerun guarantee
// extended from the client library to the platform itself. -sync batch
// and never trade that tail for throughput: a hard kill may lose the
// last unsynced interval of acknowledged writes (integrity is still
// guaranteed; replay stops at the torn tail).
//
// Journal writes are group-committed: concurrent requests enqueue their
// events and a single committer flushes them as one storage batch with
// one fsync, so -sync always no longer serializes submissions behind
// per-event disk latency. Two knobs tune the pipeline:
//
//   - -journal-max-batch caps how many events one flush carries
//     (default 1024).
//   - -journal-flush-interval makes the committer wait that long after
//     the first pending event so more requests join the group — higher
//     per-request latency, larger batches. The default 0 flushes
//     immediately; under load the queue that builds up behind one fsync
//     already forms the next group.
//
// The journal is bounded by a snapshot checkpointer: a background
// goroutine materializes the committed event stream and periodically
// folds the replayed prefix into a versioned snapshot record in the same
// store, truncating the covered events (and compacting the store when
// enough of it is dead). Restart recovery is then load-snapshot +
// replay-tail — O(live state + tail), not O(full history). Two knobs
// set the cadence:
//
//   - -snapshot-every cuts a checkpoint after that many journal events
//     (default 4096; 0 disables the event trigger).
//   - -snapshot-bytes cuts after that much encoded journal growth
//     (default 16 MiB; 0 disables the byte trigger).
//
// Both 0 disables checkpointing entirely (the journal grows unbounded,
// as before this subsystem existed).
//
// GET /api/stats reports the achieved batching (flushed_events/flushes),
// the store's fsync count, and the checkpointer's counters (checkpoints
// taken, last snapshot sequence, journal bytes reclaimed).
//
// With -data set the server is also a replication leader: committed
// journal events stream to followers over GET /api/repl/stream and the
// latest snapshot record over GET /api/repl/snapshot. A follower
// (-follow <leader-url>) bootstraps from the leader's snapshot + journal
// tail — the same bounded recovery path a restart uses — applies the
// live stream through the replay path (byte-identical state by
// construction), and serves the read API with writes redirected to the
// leader. POST /api/repl/promote turns a caught-up follower into a
// leader: with -data set, its state is cut as a snapshot into that
// directory and a fresh journal continues the same sequence numbering.
// GET /api/healthz reports role, catch-up state and replication lag for
// load balancers.
//
// In a partitioned deployment (several leaders fronted by reprowd-gate),
// every server is additionally started with -ring (the comma-separated
// names of all leaders) and -ring-self (this node's name): the engine
// then allocates only ids whose shard key this node owns on the
// consistent-hash ring, which keeps ids globally unique across leaders
// and lets the gateway route any project or task id straight to its
// owner. See docs/OPERATIONS.md for the full bringup walkthrough.
//
// Usage:
//
//	reprowd-server -addr :7070
//	reprowd-server -addr :7070 -data /var/lib/reprowd -sync batch
//	reprowd-server -data /var/lib/reprowd -journal-flush-interval 2ms
//	reprowd-server -data /var/lib/reprowd -snapshot-every 10000
//	reprowd-server -data /var/lib/reprowd -break-stale-lock   # after a kill -9
//	reprowd-server -addr :7071 -follow http://leader:7070 -data /var/lib/reprowd-f1
//	curl -X POST http://replica:7071/api/repl/promote      # failover
//	reprowd-server -addr :7070 -data /var/lib/reprowd-n1 -ring n1,n2 -ring-self n1
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vclock"
)

func main() {
	var (
		addr        = flag.String("addr", ":7070", "listen address")
		virtualTime = flag.Bool("virtual-time", false,
			"use the deterministic virtual clock instead of wall time (for reproducible demos)")
		dataDir = flag.String("data", "",
			"journal directory; empty runs in-memory only (state dies with the process)")
		syncMode = flag.String("sync", "always",
			"journal durability: always (fsync per write), batch (group commit), never")
		breakStaleLock = flag.Bool("break-stale-lock", false,
			"take over a data directory whose previous owner died without cleanup")
		leaseTTL = flag.Duration("lease-ttl", 0,
			"how long a handed-out task stays reserved for its worker before the scheduler reclaims it (0 = default 10m)")
		shards = flag.Int("shards", 0,
			"scheduler lock stripes (0 = default 16)")
		journalMaxBatch = flag.Int("journal-max-batch", 0,
			"max events per journal group-commit flush (0 = default 1024)")
		journalFlushInterval = flag.Duration("journal-flush-interval", 0,
			"how long the journal committer waits for more events before flushing a group (0 = flush immediately)")
		journalCodec = flag.String("journal-codec", "binary",
			"encoding for new journal values: binary (CRC-framed, default) or json (legacy); replay always reads both")
		snapshotEvery = flag.Uint64("snapshot-every", 4096,
			"checkpoint the journal into a snapshot after this many events (0 disables the event trigger)")
		snapshotBytes = flag.Int64("snapshot-bytes", 16<<20,
			"checkpoint after this many bytes of journal growth (0 disables the byte trigger)")
		follow = flag.String("follow", "",
			"run as a read replica of the leader at this URL; -data then names the promotion target")
		ringNodes = flag.String("ring", "",
			"comma-separated leader names of the partitioned deployment (all servers and the gateway must agree)")
		ringSelf = flag.String("ring-self", "",
			"this node's name in -ring; new ids are drawn only from the ring partition it owns")
		nodeName = flag.String("name", "",
			"this node's stable identity for epoch fencing (defaults to -ring-self); a restarted node whose journal records a later holder's epoch starts fenced")
		partition = flag.String("partition", "",
			"ring partition this node serves (leader default: its own name; follower: the partition it replicates)")
		logLevel = flag.String("log-level", "info",
			"log verbosity: debug, info, warn, error")
		logFormat = flag.String("log-format", "text",
			"structured log format: text or json")
		debugAddr = flag.String("debug-addr", "",
			"optional extra listener for net/http/pprof and expvar (/debug/pprof/, /debug/vars); empty disables")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprowd-server:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	ownsID, err := ringOwnership(*ringNodes, *ringSelf)
	if err != nil {
		fatal(logger, err)
	}

	var jsonEvents bool
	switch *journalCodec {
	case "binary":
	case "json":
		jsonEvents = true
	default:
		fatal(logger, fmt.Errorf("unknown -journal-codec %q (want binary or json)", *journalCodec))
	}

	// The one place this binary binds real time and real randomness; every
	// package below takes them injected (the clocklint contract).
	var clock vclock.Clock = sim.RealClock()
	if *virtualTime {
		clock = vclock.NewVirtual()
	}
	rnd := sim.RealRand()

	reg := obs.New()
	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("debug listener up", "addr", ln.Addr().String(),
			"routes", "/debug/pprof/ /debug/vars")
	}

	opts := platform.EngineOptions{
		Clock:    clock,
		LeaseTTL: *leaseTTL,
		Shards:   *shards,
		OwnsID:   ownsID,
		Metrics:  reg,
	}

	var (
		db      *storage.DB
		journal *platform.Journal
		node    *repl.Node
	)
	// A bare exit skips deferred calls, and an open store holds a LOCK
	// file that only Close removes — so every fatal path after Open must
	// release the store, or a benign startup failure (port in use, bad
	// journal) would force the operator into -break-stale-lock next run.
	fail := func(err error) {
		if node != nil {
			node.Close()
		}
		if db != nil {
			db.Close()
		}
		fatal(logger, err)
	}
	if *follow != "" {
		// Follower: no local store at startup — state comes from the
		// leader's snapshot + stream, and -data is only claimed if this
		// replica is later promoted.
		policy, err := parseSync(*syncMode)
		if err != nil {
			fatal(logger, err)
		}
		n, err := repl.NewFollowerNode(repl.FollowerOptions{
			LeaderURL: *follow,
			Clock:     clock,
			Rand:      rnd,
			LeaseTTL:  *leaseTTL,
			Shards:    *shards,
			DataDir:   *dataDir,
			Metrics:   reg,
			Storage: storage.Options{
				Sync:           policy,
				SyncInterval:   50 * time.Millisecond,
				BreakStaleLock: *breakStaleLock,
			},
			Journal: platform.JournalOptions{
				MaxBatch:      *journalMaxBatch,
				FlushInterval: *journalFlushInterval,
				JSONEvents:    jsonEvents,
			},
			// A promoted follower is a full leader: its seeded journal
			// keeps checkpointing on the same cadence flags.
			Checkpoint: platform.CheckpointOptions{
				EveryEvents: *snapshotEvery,
				EveryBytes:  *snapshotBytes,
			},
			// Inert while following; governs id allocation if promoted.
			OwnsID: ownsID,
		})
		if err != nil {
			fatal(logger, err)
		}
		node = n
		setIdentity(node, *nodeName, *ringSelf, *partition, logger)
		engine := node.Engine()
		srv := platform.NewServer(engine)
		srv.Handle("/api/repl/", node.Handler())
		srv.Handle("GET /metrics", reg.Handler())
		st := engine.ReplStats()
		logger.Info("reprowd replica listening", "addr", *addr,
			"leader", *follow, "bootstrap_snapshot_seq", st.SnapshotSeq)
		logger.Info("reads served locally; writes redirect to the leader; POST /api/repl/promote to fail over")
		serve(*addr, obs.AccessLog(logger, srv), logger, func() {
			if err := node.Close(); err != nil {
				logger.Error("closing replication node", "err", err)
			}
		}, fail)
		return
	}
	if *dataDir != "" {
		policy, err := parseSync(*syncMode)
		if err != nil {
			fatal(logger, err)
		}
		db, err = storage.Open(*dataDir, storage.Options{
			Sync:           policy,
			SyncInterval:   50 * time.Millisecond,
			BreakStaleLock: *breakStaleLock,
			Metrics:        reg,
		})
		if err == storage.ErrLocked {
			fmt.Fprintf(os.Stderr,
				"reprowd-server: %s is locked; if the previous server was killed, rerun with -break-stale-lock\n",
				*dataDir)
			os.Exit(1)
		}
		if err != nil {
			fatal(logger, err)
		}
		defer db.Close()
		journal, err = platform.OpenJournalOpts(db, platform.JournalOptions{
			MaxBatch:      *journalMaxBatch,
			FlushInterval: *journalFlushInterval,
			Metrics:       reg,
			JSONEvents:    jsonEvents,
		})
		if err != nil {
			fail(err)
		}
		opts.Journal = journal
		// Engine recovery replays from the snapshot manifest's cut point
		// (not the trunc record, which lags it if a kill landed between
		// the manifest commit and the truncation).
		replayStart := uint64(0)
		if info, ok, err := storage.ReadSnapshotInfo(db, platform.SnapshotPrefix); err != nil {
			fail(err)
		} else if ok {
			replayStart = info.Seq
		}
		logger.Info("journal open", "dir", *dataDir, "events", journal.Len(),
			"replayed", journal.Len()-replayStart, "snapshot_seq", replayStart,
			"sync", *syncMode, "max_batch", *journalMaxBatch,
			"flush_interval", journalFlushInterval.String())
	}

	engine, err := platform.NewEngineOpts(opts)
	if err != nil {
		fail(err)
	}
	var checkpointer *platform.Checkpointer
	if journal != nil && (*snapshotEvery > 0 || *snapshotBytes > 0) {
		// Attach before serving: the checkpointer seeds its materializer
		// from the engine's recovered state and must not miss an event.
		checkpointer, err = platform.NewCheckpointer(engine, platform.CheckpointOptions{
			EveryEvents: *snapshotEvery,
			EveryBytes:  *snapshotBytes,
		})
		if err != nil {
			fail(err)
		}
		logger.Info("snapshots enabled", "every_events", *snapshotEvery,
			"every_bytes", *snapshotBytes, "tail_start_seq", journal.FirstSeq())
	}
	srv := platform.NewServer(engine)
	srv.Handle("GET /metrics", reg.Handler())
	if journal != nil {
		// A journaled server is a replication leader: followers stream
		// the committed journal and bootstrap from the snapshot record.
		node = repl.NewLeaderNode(engine, journal, db)
		setIdentity(node, *nodeName, *ringSelf, *partition, logger)
		srv.Handle("/api/repl/", node.Handler())
	}

	persisted := "in-memory"
	if *dataDir != "" {
		persisted = *dataDir
	}
	logger.Info("reprowd platform listening", "addr", *addr,
		"virtual_time", *virtualTime, "state", persisted)
	logger.Info("routes: PUT /api/projects | POST /api/projects/{id}/tasks | POST /api/projects/{id}/newtask?worker=W | POST /api/tasks/{id}/runs | GET /api/projects/{id}/stats | GET /api/projects/{id}/queue | GET /api/healthz | GET /metrics")
	if node != nil {
		logger.Info("replication: GET /api/repl/stream | GET /api/repl/snapshot | GET /api/repl/status (start a replica with -follow)")
	}

	serve(*addr, obs.AccessLog(logger, srv), logger, func() {
		// Shutdown order matters: drain the journal's committer first (so
		// every acked event is on disk and observed), then stop the
		// checkpointer (a cut in progress finishes; staged events it
		// never cut simply remain as replay tail), then close the store.
		if journal != nil {
			journal.Close()
		}
		if checkpointer != nil {
			checkpointer.Close()
		}
		if node != nil {
			node.Close()
		}
		if db != nil {
			if err := db.Close(); err != nil {
				logger.Error("closing store", "err", err)
			}
		}
	}, fail)
}

// setIdentity binds the node's fencing identity from -name/-ring-self
// and -partition. With an identity set, a leader whose journal records an
// epoch minted to a different holder starts fenced: it was deposed while
// down and must not accept a write before rejoining as a follower.
func setIdentity(node *repl.Node, name, ringSelf, partition string, logger *slog.Logger) {
	if name == "" {
		name = ringSelf
	}
	if name == "" {
		return
	}
	if partition == "" {
		partition = name
	}
	node.SetIdentity(name, partition)
	if node.Fenced() {
		logger.Warn("node starts fenced: its journal records a later epoch minted to another holder",
			"name", name, "partition", partition, "epoch", node.EpochToken().String())
	}
}

// fatal logs the error through the structured logger and exits. Paths
// holding open resources must go through the main function's fail
// closure instead, which releases them first (slog has no Fatal, and an
// exit here would skip deferred closes exactly like log.Fatal did).
func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains it and
// runs shutdown. An ordinary stop must flush journals and release store
// LOCK files; only a hard kill should leave a stale lock for
// -break-stale-lock.
func serve(addr string, handler http.Handler, logger *slog.Logger, shutdown func(), fail func(error)) {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		fail(err)
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		shutdown()
	}
}

// ringOwnership builds the id-allocation filter for a partitioned
// deployment: with -ring n1,n2,... and -ring-self nK, this node only
// allocates ids whose shard key it owns on the ring — ids stay globally
// unique across leaders and a ring-routed gateway (reprowd-gate, given
// the same names) can route any id straight to its creator. Both flags
// empty means standalone (every id accepted).
func ringOwnership(nodes, self string) (func(int64) bool, error) {
	if nodes == "" && self == "" {
		return nil, nil
	}
	if nodes == "" || self == "" {
		return nil, fmt.Errorf("reprowd-server: -ring and -ring-self must be set together")
	}
	var names []string
	found := false
	for _, n := range strings.Split(nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
			found = found || n == self
		}
	}
	if !found {
		return nil, fmt.Errorf("reprowd-server: -ring-self %q is not in -ring %q", self, nodes)
	}
	ring := repl.NewRing(0, names...)
	return func(id int64) bool { return ring.Lookup(id) == self }, nil
}

func parseSync(mode string) (storage.SyncPolicy, error) {
	switch mode {
	case "always":
		return storage.SyncAlways, nil
	case "batch":
		return storage.SyncBatch, nil
	case "never":
		return storage.SyncNever, nil
	default:
		return 0, fmt.Errorf("reprowd-server: unknown -sync mode %q (want always, batch, or never)", mode)
	}
}
