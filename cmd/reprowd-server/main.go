// Command reprowd-server runs the crowdsourcing platform as a standalone
// HTTP service — the PyBossa role in the paper's architecture. Reprowd
// programs connect to it with platform.NewHTTPClient (or
// reprowd.NewPlatformHTTPClient), and the CLI/worker simulators can drive
// it over the same REST API.
//
// Usage:
//
//	reprowd-server -addr :7070
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/platform"
	"repro/internal/vclock"
)

func main() {
	var (
		addr        = flag.String("addr", ":7070", "listen address")
		virtualTime = flag.Bool("virtual-time", false,
			"use the deterministic virtual clock instead of wall time (for reproducible demos)")
	)
	flag.Parse()

	var clock vclock.Clock = vclock.NewWall()
	if *virtualTime {
		clock = vclock.NewVirtual()
	}
	engine := platform.NewEngine(clock)
	srv := platform.NewServer(engine)

	log.Printf("reprowd platform listening on %s (virtual time: %v)", *addr, *virtualTime)
	log.Printf("routes: PUT /api/projects | POST /api/projects/{id}/tasks | POST /api/projects/{id}/newtask?worker=W | POST /api/tasks/{id}/runs | GET /api/projects/{id}/stats")
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
