// Command reprowd-worker works tasks from a reprowd-server over its REST
// API — the role a browser-based PyBossa worker plays. In interactive mode
// it shows each task and reads your answer from stdin; in auto mode it
// simulates a worker with a given accuracy against a truth field in the
// task payload (for demos and load tests).
//
// Usage:
//
//	reprowd-worker -platform http://localhost:7070 -project reprowd-image_label -worker alice
//	reprowd-worker -platform ... -project ... -worker bot-1 -auto -truth-field truth -accuracy 0.9
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/platform"
)

func main() {
	var (
		base       = flag.String("platform", "http://localhost:7070", "platform base URL")
		project    = flag.String("project", "", "project name (required)")
		worker     = flag.String("worker", "", "worker id (required)")
		maxTasks   = flag.Int("max", 0, "stop after this many tasks (0 = until none left)")
		auto       = flag.Bool("auto", false, "answer automatically instead of interactively")
		truthField = flag.String("truth-field", "truth", "payload field holding the true answer (auto mode)")
		accuracy   = flag.Float64("accuracy", 1.0, "probability of answering the truth (auto mode)")
		options    = flag.String("options", "Yes,No", "comma-separated answer options")
		seed       = flag.Int64("seed", 1, "rng seed (auto mode)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()
	// Task rendering and answers stay on stdout (they are the interactive
	// UI); diagnostics go to the structured logger on stderr.
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprowd-worker:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	if *project == "" || *worker == "" {
		fmt.Fprintln(os.Stderr, "reprowd-worker: -project and -worker are required")
		os.Exit(2)
	}

	client := platform.NewHTTPClient(*base, nil)
	proj, ok, err := client.FindProject(*project)
	if err != nil {
		fatal(err)
	}
	if !ok {
		fatal(fmt.Errorf("project %q not found on %s", *project, *base))
	}

	opts := strings.Split(*options, ",")
	rng := rand.New(rand.NewSource(*seed))
	in := bufio.NewScanner(os.Stdin)
	done := 0

	for *maxTasks == 0 || done < *maxTasks {
		task, err := client.RequestTask(proj.ID, *worker)
		if errors.Is(err, platform.ErrNoTask) {
			fmt.Printf("no more tasks for %s — answered %d\n", *worker, done)
			return
		}
		if err != nil {
			fatal(err)
		}

		var answer string
		if *auto {
			answer = autoAnswer(rng, task.Payload[*truthField], opts, *accuracy)
		} else {
			printTask(task, opts)
			answer = readAnswer(in, opts)
			if answer == "" {
				fmt.Println("bye")
				return
			}
		}
		if _, err := client.Submit(task.ID, *worker, answer); err != nil &&
			!errors.Is(err, platform.ErrTaskCompleted) {
			fatal(err)
		}
		done++
		if *auto {
			fmt.Printf("task %d -> %s\n", task.ID, answer)
		}
	}
	fmt.Printf("quota reached — answered %d\n", done)
}

// printTask renders the task payload and options for a human.
func printTask(task platform.Task, opts []string) {
	fmt.Printf("\n--- task %d ---\n", task.ID)
	fields := make([]string, 0, len(task.Payload))
	for k := range task.Payload {
		fields = append(fields, k)
	}
	sort.Strings(fields)
	for _, f := range fields {
		fmt.Printf("  %s: %s\n", f, task.Payload[f])
	}
	fmt.Printf("answer [%s] (empty to quit): ", strings.Join(opts, "/"))
}

// readAnswer loops until a valid option (or EOF/empty for quit).
func readAnswer(in *bufio.Scanner, opts []string) string {
	for in.Scan() {
		ans := strings.TrimSpace(in.Text())
		if ans == "" {
			return ""
		}
		for _, o := range opts {
			if strings.EqualFold(ans, o) {
				return o
			}
		}
		fmt.Printf("invalid; one of [%s]: ", strings.Join(opts, "/"))
	}
	return ""
}

// autoAnswer answers the truth with probability accuracy, else a uniformly
// random wrong option.
func autoAnswer(rng *rand.Rand, truth string, opts []string, accuracy float64) string {
	if truth != "" && rng.Float64() < accuracy {
		return truth
	}
	wrong := make([]string, 0, len(opts))
	for _, o := range opts {
		if o != truth {
			wrong = append(wrong, o)
		}
	}
	if len(wrong) == 0 {
		return truth
	}
	return wrong[rng.Intn(len(wrong))]
}

func fatal(err error) {
	slog.Error("fatal", "err", err)
	os.Exit(1)
}
