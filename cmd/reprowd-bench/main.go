// Command reprowd-bench runs the reproduction's experiment suite (E1–E10
// in DESIGN.md, plus E11 for the journal group-commit pipeline, E12 for
// snapshot-checkpointed recovery, E13 for journal-shipping replication,
// E14 for the ring-routed gateway, E15 for the observability layer's
// overhead, E16 for the binary event codec and gateway read cache, and
// E17 for the distributed crowd-operator runtime) and prints the tables
// recorded in EXPERIMENTS.md. Experiments with machine-readable output
// (E11 → BENCH_submit.json, E12 → BENCH_recovery.json, E13 →
// BENCH_repl.json, E14 → BENCH_gate.json, E15 → BENCH_obs.json, E16 →
// BENCH_codec.json, E17 → BENCH_dist.json) write it to -out.
//
// The command doubles as the CI perf gate: -baseline compares the fresh
// BENCH_submit.json against a committed baseline and exits non-zero if
// any scenario's submit throughput regressed past -max-regress,
// -check-recovery enforces E12's bounded-replay invariant on
// BENCH_recovery.json, -check-repl enforces E13's replication invariants
// (snapshot-bootstrapped catch-up, zero final lag, byte-identical
// follower) on BENCH_repl.json, -check-gate enforces E14's routing
// invariants (partition-disjoint writes, follower-served reads,
// byte-identical results through the gateway) on BENCH_gate.json — all
// structural count/byte checks, immune to machine speed — -check-obs
// enforces E15's instrumentation-overhead bar (instrumented submit within
// -max-obs-overhead of the no-op-registry run, a same-machine ratio) on
// BENCH_obs.json, and -check-codec enforces E16's codec bars (binary at
// 2x+ JSON encode+decode throughput and 30%+ smaller events, both
// same-machine ratios, plus structural round-trip and node-free cache-hit
// checks) on BENCH_codec.json, and -check-dist enforces E17's
// distributed-operator invariants (partition-disjoint shards covering
// the pair set, a distributed result set equal to the single-leader run,
// streaming Dawid-Skene converging to the batch fit) on BENCH_dist.json.
//
// Usage:
//
//	reprowd-bench                 # run everything at full scale
//	reprowd-bench -exp e4,e5      # selected experiments
//	reprowd-bench -exp e11        # concurrent submit × sync policy, emits BENCH_submit.json
//	reprowd-bench -exp e12        # restart replay vs history length, emits BENCH_recovery.json
//	reprowd-bench -exp e13        # follower catch-up + steady-state lag, emits BENCH_repl.json
//	reprowd-bench -exp e14        # gateway routing + read fan-out, emits BENCH_gate.json
//	reprowd-bench -exp e15        # instrumentation overhead, emits BENCH_obs.json
//	reprowd-bench -exp e16        # binary codec vs JSON + read cache, emits BENCH_codec.json
//	reprowd-bench -exp e17        # distributed crowd join over 4 leaders, emits BENCH_dist.json
//	reprowd-bench -quick          # small workloads (seconds, not minutes)
//	reprowd-bench -seed 7         # change the simulation seed
//	reprowd-bench -quick -exp e11,e12,e13,e14,e15,e16,e17 -baseline ci/BENCH_baseline.json \
//	    -check-recovery -check-repl -check-gate -check-obs -check-codec -check-dist
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids (e1..e12) or 'all'")
		seed    = flag.Int64("seed", 20160903, "simulation seed")
		quick   = flag.Bool("quick", false, "run reduced workloads")
		outDir  = flag.String("out", ".", "directory for machine-readable results (BENCH_*.json)")

		baseline = flag.String("baseline", "",
			"baseline BENCH_submit.json to gate against; requires e11 in -exp")
		maxRegress = flag.Float64("max-regress", 0.30,
			"fraction of baseline ops/s a scenario may lose before -baseline fails the run")
		checkRecovery = flag.Bool("check-recovery", false,
			"fail unless BENCH_recovery.json shows snapshot restarts bounded by the checkpoint interval; requires e12 in -exp")
		checkRepl = flag.Bool("check-repl", false,
			"fail unless BENCH_repl.json shows snapshot-bootstrapped catch-up and a byte-identical follower; requires e13 in -exp")
		checkGate = flag.Bool("check-gate", false,
			"fail unless BENCH_gate.json shows partition-disjoint writes, follower-served reads, and gateway reads byte-identical to leader reads; requires e14 in -exp")
		checkObs = flag.Bool("check-obs", false,
			"fail unless BENCH_obs.json shows instrumented submit throughput within -max-obs-overhead of the no-op-registry run; requires e15 in -exp")
		maxObsOverhead = flag.Float64("max-obs-overhead", 0.05,
			"fraction of bare throughput the instrumented run may lose before -check-obs fails")
		checkCodec = flag.Bool("check-codec", false,
			"fail unless BENCH_codec.json shows the binary codec at 2x+ JSON encode+decode throughput, 30%+ smaller events, and cache hits touching no node; requires e16 in -exp")
		checkDist = flag.Bool("check-dist", false,
			"fail unless BENCH_dist.json shows partition-disjoint shards, a distributed result set equal to the single-leader run, and streaming Dawid-Skene matching the batch fit; requires e17 in -exp")
	)
	flag.Parse()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "reprowd-bench: create -out dir: %v\n", err)
			os.Exit(2)
		}
	}
	cfg := exp.Config{Seed: *seed, Quick: *quick, OutDir: *outDir}

	var ids []string
	if *expFlag == "all" {
		ids = exp.IDs()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "reprowd-bench: no experiments selected")
		os.Exit(2)
	}

	failed := false
	for _, id := range ids {
		res, err := exp.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reprowd-bench: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(res.Format())
	}

	if *baseline != "" {
		if err := gateSubmit(*outDir, *baseline, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "reprowd-bench: baseline gate: %v\n", err)
			failed = true
		} else {
			fmt.Printf("baseline gate: ops/s within %.0f%% of %s\n", *maxRegress*100, *baseline)
		}
	}
	if *checkRecovery {
		if err := gateRecovery(*outDir); err != nil {
			fmt.Fprintf(os.Stderr, "reprowd-bench: recovery gate: %v\n", err)
			failed = true
		} else {
			fmt.Println("recovery gate: snapshot restart bounded by checkpoint interval")
		}
	}
	if *checkRepl {
		if err := gateRepl(*outDir); err != nil {
			fmt.Fprintf(os.Stderr, "reprowd-bench: replication gate: %v\n", err)
			failed = true
		} else {
			fmt.Println("replication gate: snapshot-bootstrapped catch-up, byte-identical follower")
		}
	}
	if *checkGate {
		if err := gateGateway(*outDir); err != nil {
			fmt.Fprintf(os.Stderr, "reprowd-bench: gateway gate: %v\n", err)
			failed = true
		} else {
			fmt.Println("gateway gate: partition-disjoint writes, follower-served byte-identical reads")
		}
	}
	if *checkObs {
		if err := gateObs(*outDir, *maxObsOverhead); err != nil {
			fmt.Fprintf(os.Stderr, "reprowd-bench: observability gate: %v\n", err)
			failed = true
		} else {
			fmt.Printf("observability gate: instrumented submit within %.0f%% of no-op registry\n", *maxObsOverhead*100)
		}
	}
	if *checkCodec {
		if err := gateCodec(*outDir); err != nil {
			fmt.Fprintf(os.Stderr, "reprowd-bench: codec gate: %v\n", err)
			failed = true
		} else {
			fmt.Println("codec gate: binary 2x+ encode+decode throughput, 30%+ smaller events, cache hits node-free")
		}
	}
	if *checkDist {
		if err := gateDist(*outDir); err != nil {
			fmt.Fprintf(os.Stderr, "reprowd-bench: distributed-join gate: %v\n", err)
			failed = true
		} else {
			fmt.Println("distributed-join gate: disjoint shards, single-leader-equivalent results, incremental quality matches batch")
		}
	}
	if failed {
		os.Exit(1)
	}
}

// gateDist enforces the distributed-operator invariants on the freshly
// written BENCH_dist.json.
func gateDist(outDir string) error {
	records, err := exp.LoadDistRecords(filepath.Join(outDir, "BENCH_dist.json"))
	if err != nil {
		return fmt.Errorf("load distributed-join records (did -exp include e17?): %w", err)
	}
	return exp.CheckDist(records)
}

// gateCodec enforces the binary-codec and read-cache bars on the freshly
// written BENCH_codec.json.
func gateCodec(outDir string) error {
	records, err := exp.LoadCodecRecords(filepath.Join(outDir, "BENCH_codec.json"))
	if err != nil {
		return fmt.Errorf("load codec records (did -exp include e16?): %w", err)
	}
	return exp.CheckCodec(records)
}

// gateSubmit compares the freshly written BENCH_submit.json against the
// committed baseline.
func gateSubmit(outDir, baselinePath string, maxRegress float64) error {
	current, err := exp.LoadSubmitRecords(filepath.Join(outDir, "BENCH_submit.json"))
	if err != nil {
		return fmt.Errorf("load current run (did -exp include e11?): %w", err)
	}
	base, err := exp.LoadSubmitRecords(baselinePath)
	if err != nil {
		return fmt.Errorf("load baseline: %w", err)
	}
	return exp.CheckSubmitRegression(current, base, maxRegress)
}

// gateRecovery enforces the bounded-replay invariant on the freshly
// written BENCH_recovery.json.
func gateRecovery(outDir string) error {
	records, err := exp.LoadRecoveryRecords(filepath.Join(outDir, "BENCH_recovery.json"))
	if err != nil {
		return fmt.Errorf("load recovery records (did -exp include e12?): %w", err)
	}
	return exp.CheckRecoveryBounded(records)
}

// gateRepl enforces the replication invariants on the freshly written
// BENCH_repl.json.
func gateRepl(outDir string) error {
	records, err := exp.LoadReplRecords(filepath.Join(outDir, "BENCH_repl.json"))
	if err != nil {
		return fmt.Errorf("load replication records (did -exp include e13?): %w", err)
	}
	return exp.CheckReplBounded(records)
}

// gateGateway enforces the ring-routing invariants on the freshly
// written BENCH_gate.json.
func gateGateway(outDir string) error {
	records, err := exp.LoadGateRecords(filepath.Join(outDir, "BENCH_gate.json"))
	if err != nil {
		return fmt.Errorf("load gateway records (did -exp include e14?): %w", err)
	}
	return exp.CheckGateRouting(records)
}

// gateObs enforces the instrumentation-overhead bar on the freshly
// written BENCH_obs.json.
func gateObs(outDir string, maxOverhead float64) error {
	records, err := exp.LoadObsRecords(filepath.Join(outDir, "BENCH_obs.json"))
	if err != nil {
		return fmt.Errorf("load observability records (did -exp include e15?): %w", err)
	}
	return exp.CheckObsOverhead(records, maxOverhead)
}
