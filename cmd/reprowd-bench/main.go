// Command reprowd-bench runs the reproduction's experiment suite (E1–E10
// in DESIGN.md, plus E11 for the journal group-commit pipeline) and
// prints the tables recorded in EXPERIMENTS.md. Experiments with
// machine-readable output (E11's concurrent-submit scenario →
// BENCH_submit.json) write it to -out.
//
// Usage:
//
//	reprowd-bench                 # run everything at full scale
//	reprowd-bench -exp e4,e5      # selected experiments
//	reprowd-bench -exp e11        # concurrent submit × sync policy, emits BENCH_submit.json
//	reprowd-bench -quick          # small workloads (seconds, not minutes)
//	reprowd-bench -seed 7         # change the simulation seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids (e1..e11) or 'all'")
		seed    = flag.Int64("seed", 20160903, "simulation seed")
		quick   = flag.Bool("quick", false, "run reduced workloads")
		outDir  = flag.String("out", ".", "directory for machine-readable results (BENCH_*.json)")
	)
	flag.Parse()

	cfg := exp.Config{Seed: *seed, Quick: *quick, OutDir: *outDir}

	var ids []string
	if *expFlag == "all" {
		ids = exp.IDs()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "reprowd-bench: no experiments selected")
		os.Exit(2)
	}

	failed := false
	for _, id := range ids {
		res, err := exp.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reprowd-bench: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(res.Format())
	}
	if failed {
		os.Exit(1)
	}
}
