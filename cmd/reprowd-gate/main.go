// Command reprowd-gate runs the ring-routed gateway (internal/gate): the
// stateless front door that makes a partitioned reprowd deployment — N
// leaders created with matching -ring/-ring-self flags, plus their
// -follow replicas — look like a single reprowd-server to every client.
//
// Writes are routed to the leader owning the project's ring partition
// (retrying ring successors when the owner is down), reads fan out to
// caught-up followers (falling back to the leader when replication lag
// exceeds -max-lag), and 307s from demoted nodes are followed and refresh
// the gateway's role view. The gateway keeps no durable state: kill it,
// restart it, or run several behind a TCP balancer.
//
// Membership comes from -topology (a JSON file, re-read when its mtime
// changes) or -nodes (inline), and can be replaced at runtime with
// POST /api/gate/topology. Roles are never configured — the gateway
// probes every node's GET /api/healthz and discovers who leads, who
// follows whom, and how far behind each follower is.
//
// Topology file shape:
//
//	{"nodes": [
//	  {"name": "n1", "url": "http://10.0.0.1:7070"},
//	  {"name": "n2", "url": "http://10.0.0.2:7070"},
//	  {"name": "f1", "url": "http://10.0.0.3:7071"}
//	]}
//
// Names must match the servers' -ring flags (ring hashing is over names);
// follower URLs must equal the -follow URL those followers were started
// with (that is how the gateway associates replicas to their leader).
//
// Usage:
//
//	reprowd-gate -addr :7080 -topology /etc/reprowd/topology.json
//	reprowd-gate -addr :7080 -nodes "n1=http://localhost:7070,n2=http://localhost:7072"
//	curl -X POST -d @topology.json http://localhost:7080/api/gate/topology
//	curl http://localhost:7080/api/gate/stats
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gate"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", ":7080", "listen address")
		topoPath = flag.String("topology", "",
			"JSON topology file ({\"nodes\":[{\"name\",\"url\"},...]}); re-read when its mtime changes")
		nodesFlag = flag.String("nodes", "",
			"inline topology: comma-separated name=url pairs (alternative to -topology)")
		maxLag = flag.Uint64("max-lag", gate.DefaultMaxLag,
			"max replication lag (events) at which a follower still serves reads")
		readCache = flag.Bool("read-cache", true,
			"serve repeated single-partition reads from the frontier-tagged cache until the partition's journal frontier advances")
		maxBodyBuffer = flag.Int64("max-body-buffer", gate.DefaultMaxBodyBytes,
			"max request-body bytes buffered for retry-on-successor replay; bodies over this are rejected with 413 (raise for very large AddTasks batches)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond,
			"how often every node's /api/healthz is probed")
		reloadInterval = flag.Duration("topology-reload-interval", 2*time.Second,
			"how often the -topology file's mtime is checked (0 disables the file watch)")
		logLevel = flag.String("log-level", "info",
			"log verbosity: debug, info, warn, error")
		logFormat = flag.String("log-format", "text",
			"structured log format: text or json")
		debugAddr = flag.String("debug-addr", "",
			"optional extra listener for net/http/pprof and expvar (/debug/pprof/, /debug/vars); empty disables")
		failover = flag.Bool("failover", false,
			"run the elector: when a partition leader stays unreachable past -failover-after, promote its most-caught-up follower under a fresh fencing epoch, and fence deposed leaders that resurface")
		failoverAfter = flag.Duration("failover-after", 3*time.Second,
			"unreachability window before the elector treats a partition leader as dead (probe blips shorter than this never cost a leader its partition)")
		failoverMaxLag = flag.Uint64("failover-max-lag", 0,
			"max events a follower may trail the dead leader's last probed frontier and still be promoted (0 = must hold everything the leader was last seen with)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprowd-gate:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}

	reg := obs.New()
	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		logger.Info("debug listener up", "addr", ln.Addr().String(),
			"routes", "/debug/pprof/ /debug/vars")
	}

	top, err := loadTopology(*topoPath, *nodesFlag)
	if err != nil {
		fatal(err)
	}
	g, err := gate.New(gate.Options{
		Topology:       top,
		MaxLag:         *maxLag,
		ProbeInterval:  *probeInterval,
		Metrics:        reg,
		ReadCache:      *readCache,
		MaxBodyBytes:   *maxBodyBuffer,
		AutoFailover:   *failover,
		FailoverAfter:  *failoverAfter,
		FailoverMaxLag: *failoverMaxLag,
		// Real time and real jitter bind here, at the binary's edge;
		// internal/gate itself only ever sees the injected pair.
		Clock: sim.RealClock(),
		Rand:  sim.RealRand(),
	})
	if err != nil {
		fatal(err)
	}
	defer g.Close()

	if *topoPath != "" && *reloadInterval > 0 {
		go watchTopology(g, *topoPath, *reloadInterval, logger)
	}

	// The gateway handles the whole path space itself; /metrics is the
	// one route mounted beside it.
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("/", g)

	logger.Info("reprowd-gate listening", "addr", *addr, "nodes", len(top.Nodes),
		"max_lag", *maxLag, "probe_interval", probeInterval.String(), "read_cache", *readCache)
	logger.Info("routes: the full platform REST surface, ring-routed | GET /api/gate/stats | GET/POST /api/gate/topology | GET /api/healthz | GET /metrics")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	httpSrv := &http.Server{Addr: *addr, Handler: obs.AccessLog(logger, mux)}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}
}

// loadTopology reads the initial membership from -topology or -nodes.
func loadTopology(path, inline string) (gate.Topology, error) {
	switch {
	case path != "" && inline != "":
		return gate.Topology{}, fmt.Errorf("reprowd-gate: -topology and -nodes are mutually exclusive")
	case path != "":
		return readTopologyFile(path)
	case inline != "":
		return parseNodes(inline)
	default:
		return gate.Topology{}, fmt.Errorf("reprowd-gate: need -topology <file> or -nodes name=url,...")
	}
}

func readTopologyFile(path string) (gate.Topology, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return gate.Topology{}, fmt.Errorf("reprowd-gate: read topology: %w", err)
	}
	var t gate.Topology
	if err := json.Unmarshal(buf, &t); err != nil {
		return gate.Topology{}, fmt.Errorf("reprowd-gate: parse %s: %w", path, err)
	}
	return t, t.Validate()
}

func parseNodes(inline string) (gate.Topology, error) {
	var t gate.Topology
	for _, pair := range strings.Split(inline, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return t, fmt.Errorf("reprowd-gate: -nodes entry %q is not name=url", pair)
		}
		t.Nodes = append(t.Nodes, gate.NodeConfig{Name: name, URL: url})
	}
	return t, t.Validate()
}

// watchTopology hot-reloads the topology file when its mtime changes. A
// file that fails to parse (or to validate) is logged and skipped — the
// gateway keeps routing on its last good membership; never take down the
// front door over a half-edited config.
func watchTopology(g *gate.Gateway, path string, every time.Duration, logger *slog.Logger) {
	var last time.Time
	if fi, err := os.Stat(path); err == nil {
		last = fi.ModTime()
	}
	for range time.Tick(every) {
		fi, err := os.Stat(path)
		if err != nil || !fi.ModTime().After(last) {
			continue
		}
		last = fi.ModTime()
		t, err := readTopologyFile(path)
		if err != nil {
			logger.Warn("topology reload skipped", "err", err)
			continue
		}
		if err := g.SetTopology(t); err != nil {
			logger.Warn("topology reload rejected", "err", err)
			continue
		}
		logger.Info("topology reloaded", "nodes", len(t.Nodes))
	}
}
